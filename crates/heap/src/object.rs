//! Object views: a typed window onto an object laid out inline in a
//! block's words.
//!
//! An object is `[header][fwd][field 0]…[field n-1]` starting at some
//! word offset of a [`Block`]; an [`Object`] is a *copyable view*
//! `(block, offset)` — constructing one costs a single header load (to
//! cache the field count), and every accessor compiles down to atomic
//! operations on the block's word array. All field accesses are
//! individual atomic loads/stores, which makes the layout safe to share
//! between mutator threads and the collectors. Higher-level ordering
//! (who may read what, and when) is enforced by the hierarchical heap
//! discipline, not by this module.
//!
//! The concurrent mark bit and the suspect bit live in the block's side
//! metadata, not the header; the view routes `try_mark`/`is_marked`/
//! `mark_suspect`/`is_suspect` there. The pin/forward/dead/
//! entangled-space state machine stays a single header word under CAS —
//! see `crate::header` for why that split is where it is.

use std::sync::atomic::Ordering;

use crate::block::Block;
use crate::header::{Header, ObjKind, NO_PIN_LEVEL};
use crate::value::{ObjRef, Value, Word};

/// Per-object overhead in bytes (header word + forwarding word), used
/// for residency accounting.
pub const OBJECT_OVERHEAD_BYTES: usize = 16;

/// Outcome of a pin attempt, reported so the caller can update the
/// entangled-object index and cost meters exactly once.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PinOutcome {
    /// The object was not pinned before; the caller must register it.
    NewlyPinned,
    /// Already pinned; the level may have been lowered.
    AlreadyPinned {
        /// True if this attempt lowered the pin level.
        lowered: bool,
    },
    /// The object has been forwarded; pin the new copy instead.
    Forwarded(ObjRef),
}

/// A view of one inline heap object: the block it lives in, its header's
/// word offset, and the cached field count (immutable once published).
///
/// Objects never move in Rust-memory terms; "moving" an object means
/// copying its payload into a fresh reservation and installing a
/// forwarding reference in the old location's `fwd` word.
#[derive(Clone, Copy)]
pub struct Object<'a> {
    block: &'a Block,
    off: u32,
    len: u32,
}

impl std::fmt::Debug for Object<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Object")
            .field("block", &self.block.id())
            .field("off", &self.off)
            .field("header", &self.header())
            .finish()
    }
}

impl<'a> Object<'a> {
    /// Builds a view of the published object at `off` (crate-internal;
    /// go through [`Block::get`]/[`Block::try_get`]).
    #[inline]
    pub(crate) fn view(block: &'a Block, off: u32) -> Object<'a> {
        let len = Header::from_bits(block.word(off).load(Ordering::Acquire)).len();
        Object {
            block,
            off,
            len: len as u32,
        }
    }

    /// The block this object lives in.
    #[inline]
    pub fn block(&self) -> &'a Block {
        self.block
    }

    /// The object's header word offset within its block.
    #[inline]
    pub fn offset(&self) -> u32 {
        self.off
    }

    /// The object's reference.
    #[inline]
    pub fn objref(&self) -> ObjRef {
        ObjRef::new(self.block.id(), self.off)
    }

    /// Total inline words (header + fwd + fields).
    #[inline]
    pub fn nwords(&self) -> usize {
        crate::block::OBJECT_HEADER_WORDS + self.len as usize
    }

    /// A snapshot of the current header.
    #[inline]
    pub fn header(&self) -> Header {
        Header::from_bits(self.block.word(self.off).load(Ordering::Acquire))
    }

    /// The object's kind (immutable after allocation).
    #[inline]
    pub fn kind(&self) -> ObjKind {
        self.header().kind()
    }

    /// Number of fields.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the object has no fields.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes, for residency accounting.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        OBJECT_OVERHEAD_BYTES + 8 * self.len as usize
    }

    #[inline]
    fn field_atom(&self, i: usize) -> &'a std::sync::atomic::AtomicU64 {
        assert!(
            i < self.len as usize,
            "field index {i} out of bounds (len {})",
            self.len
        );
        self.block.word(self.off + 2 + i as u32)
    }

    /// Loads field `i` as a raw word.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn field_word(&self, i: usize) -> Word {
        Word::from_bits(self.field_atom(i).load(Ordering::Acquire))
    }

    /// Loads field `i` as a decoded value.
    #[inline]
    pub fn field(&self, i: usize) -> Value {
        self.field_word(i).decode()
    }

    /// Stores a raw word into field `i`.
    #[inline]
    pub fn set_field_word(&self, i: usize, w: Word) {
        self.field_atom(i).store(w.bits(), Ordering::Release);
    }

    /// Stores a value into field `i`.
    #[inline]
    pub fn set_field(&self, i: usize, v: Value) {
        self.set_field_word(i, Word::encode(v));
    }

    /// Atomically replaces field `i`, returning the previous value.
    #[inline]
    pub fn swap_field(&self, i: usize, v: Value) -> Value {
        let old = self
            .field_atom(i)
            .swap(Word::encode(v).bits(), Ordering::AcqRel);
        Word::from_bits(old).decode()
    }

    /// Atomically compares-and-swaps field `i` from `expected` to `new`.
    /// Returns `Ok(())` on success and the actual current value on failure.
    #[inline]
    pub fn cas_field(&self, i: usize, expected: Value, new: Value) -> Result<(), Value> {
        match self.field_atom(i).compare_exchange(
            Word::encode(expected).bits(),
            Word::encode(new).bits(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(actual) => Err(Word::from_bits(actual).decode()),
        }
    }

    /// Atomically adds `delta` to an integer field, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if the field does not currently hold an integer.
    pub fn fetch_add_int(&self, i: usize, delta: i64) -> i64 {
        loop {
            let cur = self.field(i);
            let n = match cur {
                Value::Int(n) => n + delta,
                other => panic!("fetch_add on non-int field holding {other:?}"),
            };
            if self.cas_field(i, cur, Value::Int(n)).is_ok() {
                return n;
            }
        }
    }

    /// Loads field `i` as raw bits (for [`ObjKind::RawArr`] payloads,
    /// which are opaque to the collectors).
    #[inline]
    pub fn load_raw(&self, i: usize) -> u64 {
        self.field_atom(i).load(Ordering::Acquire)
    }

    /// Stores raw bits into field `i`.
    #[inline]
    pub fn store_raw(&self, i: usize, bits: u64) {
        self.field_atom(i).store(bits, Ordering::Release);
    }

    /// Atomically compares-and-swaps raw bits in field `i`. Returns
    /// `Ok(())` on success and the observed bits on failure.
    #[inline]
    pub fn cas_raw(&self, i: usize, expected: u64, new: u64) -> Result<(), u64> {
        self.field_atom(i)
            .compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
    }

    /// Atomically adds to a raw 64-bit field, returning the previous bits.
    #[inline]
    pub fn fetch_add_raw(&self, i: usize, delta: u64) -> u64 {
        self.field_atom(i).fetch_add(delta, Ordering::AcqRel)
    }

    /// Iterates over the current field words (a racy snapshot, one atomic
    /// load per field). Collectors use this for tracing.
    pub fn field_words(&self) -> impl Iterator<Item = Word> + 'a {
        let block = self.block;
        let off = self.off;
        (0..self.len).map(move |i| Word::from_bits(block.word(off + 2 + i).load(Ordering::Acquire)))
    }

    // ---- pin protocol ---------------------------------------------------

    /// Attempts to pin the object at `level` (lowering an existing level
    /// if already pinned). If the object was concurrently forwarded, the
    /// caller must redirect the pin to the new location.
    pub fn try_pin(&self, level: u16) -> PinOutcome {
        debug_assert!(level != NO_PIN_LEVEL, "NO_PIN_LEVEL is a sentinel");
        // Enter the barrier's slow set *before* the pin becomes visible:
        // a reader classifying this object after the CAS below must take
        // the slow tier. A stray slow bit (forwarded object, lost race)
        // only costs a spurious slow-tier trip.
        self.block.set_slow(self.off);
        loop {
            let cur = self.header();
            if cur.is_forwarded() {
                return PinOutcome::Forwarded(
                    self.forward_ref().expect("forwarded object lacks fwd ref"),
                );
            }
            let newly = !cur.is_pinned();
            let lowered = cur.is_pinned() && level < cur.pin_level();
            if !newly && !lowered {
                return PinOutcome::AlreadyPinned { lowered: false };
            }
            let next = cur.with_pin(level).with_entangled_space();
            if self.cas_header(cur, next) {
                return if newly {
                    PinOutcome::NewlyPinned
                } else {
                    PinOutcome::AlreadyPinned { lowered }
                };
            }
        }
    }

    /// Clears the pin if the current pin level is `>= join_depth` (the
    /// unpin-at-join rule). Returns true if this call unpinned the object.
    pub fn try_unpin_at_join(&self, join_depth: u16) -> bool {
        loop {
            let cur = self.header();
            if !cur.is_pinned() || cur.pin_level() < join_depth {
                return false;
            }
            let next = cur.without_pin().without_entangled_space();
            if self.cas_header(cur, next) {
                // Leave the slow set unless the sticky suspect bit keeps
                // the object a slow-path candidate.
                self.block.clear_slow_unless_suspect(self.off);
                return true;
            }
        }
    }

    // ---- collector interface --------------------------------------------

    /// Claims the object for evacuation: atomically sets the forwarded
    /// bit, with the destination written to the `fwd` word first. Fails
    /// (returning the observed header) if the object was concurrently
    /// pinned or already forwarded.
    pub fn try_forward(&self, to: ObjRef) -> Result<(), Header> {
        loop {
            let cur = self.header();
            if cur.is_forwarded() || cur.is_pinned() {
                return Err(cur);
            }
            self.block
                .word(self.off + 1)
                .store(Word::encode(Value::Obj(to)).bits(), Ordering::Release);
            if self.cas_header(cur, cur.with_forwarded()) {
                self.block.note_forwarded();
                return Ok(());
            }
        }
    }

    /// Rewrites the forwarding destination (forwarding-chain path
    /// compression: point an old copy directly at the final location).
    ///
    /// # Panics
    ///
    /// Panics if the object is not forwarded.
    pub fn compress_forward(&self, to: ObjRef) {
        assert!(
            self.header().is_forwarded(),
            "compress_forward on unforwarded object"
        );
        self.block
            .word(self.off + 1)
            .store(Word::encode(Value::Obj(to)).bits(), Ordering::Release);
    }

    /// The forwarding destination, if the object has been evacuated.
    #[inline]
    pub fn forward_ref(&self) -> Option<ObjRef> {
        if self.header().is_forwarded() {
            Word::from_bits(self.block.word(self.off + 1).load(Ordering::Acquire))
                .decode()
                .as_obj()
        } else {
            None
        }
    }

    /// Sets the concurrent-collector mark bit (side metadata) and paints
    /// the object's lines; returns true if this call marked it (false if
    /// already marked). One `fetch_or` on the bitmap word — racing
    /// tracers are benign and exactly one wins the mark, which is what
    /// lets CGC trace packets share objects without coordination.
    #[inline]
    pub fn try_mark(&self) -> bool {
        self.block.try_set_mark(self.off, self.nwords())
    }

    /// Whether the concurrent collector marked this object this cycle.
    #[inline]
    pub fn is_marked(&self) -> bool {
        self.block.is_marked(self.off)
    }

    /// Clears the mark bit (between concurrent-collection cycles).
    #[inline]
    pub fn clear_mark(&self) {
        self.block.clear_mark(self.off);
    }

    /// Marks the object dead (swept). Idempotent.
    pub fn set_dead(&self) {
        loop {
            let cur = self.header();
            if cur.is_dead() {
                return;
            }
            if self.cas_header(cur, cur.with_dead()) {
                return;
            }
        }
    }

    /// Atomically dead-marks the object **iff** it is still plain local
    /// garbage: not pinned, not in an entangled space, not forwarded, not
    /// already dead. The eligibility conditions are re-verified on every
    /// CAS attempt, so a pin (or shield tag) landing between a caller's
    /// header inspection and the kill can never be lost. Returns the
    /// header that was killed, or `None` if the object was no longer
    /// eligible.
    pub fn try_kill(&self) -> Option<Header> {
        loop {
            let cur = self.header();
            if cur.is_dead() || cur.is_pinned() || cur.is_forwarded() || cur.in_entangled_space() {
                return None;
            }
            if self.cas_header(cur, cur.with_dead()) {
                return Some(cur);
            }
        }
    }

    /// Atomically dead-marks the object **iff** it is sweepable by the
    /// entanglement collector: resident in an entangled space, unmarked,
    /// not forwarded, not already dead (pinned is fine — an unmarked
    /// pinned object is garbage whose pin owner joined away). Returns the
    /// header that was killed so the caller can settle pin accounting
    /// from the atomic pre-kill state, or `None` if the object must be
    /// retained.
    ///
    /// The mark check reads the side bitmap *outside* the header CAS.
    /// That is sound because sweeps only run after the mark-termination
    /// handshake: the marking flag is down, no tracer is live, and no new
    /// cycle can start while this one holds the cycle lock — the mark bit
    /// observed here is stable for the duration of the sweep.
    pub fn try_kill_swept(&self) -> Option<Header> {
        if self.is_marked() {
            return None;
        }
        loop {
            let cur = self.header();
            if cur.is_dead() || cur.is_forwarded() || !cur.in_entangled_space() {
                return None;
            }
            if self.cas_header(cur, cur.with_dead()) {
                return Some(cur);
            }
        }
    }

    /// Marks the object as an entanglement suspect (it received a
    /// down-pointer write). Sticky side-metadata bit; the local collector
    /// re-establishes it on evacuated copies.
    #[inline]
    pub fn mark_suspect(&self) {
        self.block.set_suspect(self.off);
    }

    /// Whether the object is an entanglement suspect.
    #[inline]
    pub fn is_suspect(&self) -> bool {
        self.block.is_suspect(self.off)
    }

    /// The barrier fast tier's one-load classification: true if reads of
    /// this object must take the slow path (suspect or possibly pinned).
    #[inline]
    pub fn is_slow(&self) -> bool {
        self.block.is_slow(self.off)
    }

    /// Flags the object as resident in its heap's entangled (non-moving)
    /// space without pinning it (used when the local collector transfers
    /// the closure of a pinned object).
    pub fn set_entangled_space(&self) {
        loop {
            let cur = self.header();
            if cur.in_entangled_space() {
                return;
            }
            if self.cas_header(cur, cur.with_entangled_space()) {
                return;
            }
        }
    }

    fn cas_header(&self, cur: Header, next: Header) -> bool {
        self.block
            .word(self.off)
            .compare_exchange(cur.bits(), next.bits(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::sft::SftTable;
    use std::sync::Arc;

    fn block() -> Block {
        Block::new(0, 0, 256, 0, Arc::new(SftTable::new()))
    }

    fn alloc<'a>(b: &'a Block, kind: ObjKind, vals: &[Value]) -> Object<'a> {
        let words: Vec<Word> = vals.iter().map(|&v| Word::encode(v)).collect();
        let r = b.try_alloc(kind, &words).expect("block full");
        b.get(r.word())
    }

    #[test]
    fn fields_roundtrip() {
        let b = block();
        let o = alloc(
            &b,
            ObjKind::Tuple,
            &[Value::Int(1), Value::Bool(true), Value::Unit],
        );
        assert_eq!(o.len(), 3);
        assert_eq!(o.field(0), Value::Int(1));
        assert_eq!(o.field(1), Value::Bool(true));
        assert_eq!(o.field(2), Value::Unit);
        o.set_field(2, Value::Int(9));
        assert_eq!(o.field(2), Value::Int(9));
    }

    #[test]
    fn swap_and_cas() {
        let b = block();
        let o = alloc(&b, ObjKind::Ref, &[Value::Int(1)]);
        assert_eq!(o.swap_field(0, Value::Int(2)), Value::Int(1));
        assert_eq!(o.cas_field(0, Value::Int(2), Value::Int(3)), Ok(()));
        assert_eq!(
            o.cas_field(0, Value::Int(2), Value::Int(4)),
            Err(Value::Int(3))
        );
        assert_eq!(o.fetch_add_int(0, 10), 13);
    }

    #[test]
    fn pin_is_idempotent_and_lowers() {
        let b = block();
        let o = alloc(&b, ObjKind::Ref, &[Value::Unit]);
        assert_eq!(o.try_pin(5), PinOutcome::NewlyPinned);
        assert!(o.header().is_pinned());
        assert!(o.header().in_entangled_space());
        assert!(o.is_slow(), "a pinned object is in the slow set");
        assert_eq!(o.header().pin_level(), 5);
        assert_eq!(o.try_pin(7), PinOutcome::AlreadyPinned { lowered: false });
        assert_eq!(o.header().pin_level(), 5);
        assert_eq!(o.try_pin(2), PinOutcome::AlreadyPinned { lowered: true });
        assert_eq!(o.header().pin_level(), 2);
    }

    #[test]
    fn unpin_at_join_respects_level() {
        let b = block();
        let o = alloc(&b, ObjKind::Ref, &[Value::Unit]);
        o.try_pin(3);
        assert!(!o.try_unpin_at_join(4), "level 3 < join depth 4: keep pin");
        assert!(o.try_unpin_at_join(3), "level 3 >= join depth 3: unpin");
        assert!(!o.header().is_pinned());
        assert!(!o.is_slow(), "unpinned and never suspected: fast again");
        assert!(!o.try_unpin_at_join(0), "already unpinned");
    }

    #[test]
    fn forwarding_excludes_pinned() {
        let b = block();
        let o = alloc(&b, ObjKind::Tuple, &[Value::Unit]);
        o.try_pin(1);
        let err = o.try_forward(ObjRef::new(1, 1)).unwrap_err();
        assert!(err.is_pinned());
        assert_eq!(o.forward_ref(), None);
        assert_eq!(b.forwarded_count(), 0);
    }

    #[test]
    fn forwarding_roundtrip_and_pin_redirect() {
        let b = block();
        let o = alloc(&b, ObjKind::Tuple, &[Value::Unit]);
        let dst = ObjRef::new(2, 7);
        o.try_forward(dst).unwrap();
        assert_eq!(o.forward_ref(), Some(dst));
        assert_eq!(b.forwarded_count(), 1);
        assert!(o.try_forward(ObjRef::new(3, 3)).is_err());
        assert_eq!(o.try_pin(0), PinOutcome::Forwarded(dst));
    }

    #[test]
    fn mark_cycle() {
        let b = block();
        let o = alloc(&b, ObjKind::Tuple, &[]);
        assert!(o.try_mark());
        assert!(!o.try_mark());
        o.clear_mark();
        assert!(o.try_mark());
    }

    #[test]
    fn size_accounting() {
        let b = block();
        let o = alloc(&b, ObjKind::MutArr, &[Value::Unit; 4]);
        assert_eq!(o.size_bytes(), OBJECT_OVERHEAD_BYTES + 32);
    }

    #[test]
    fn dead_flag_sticks() {
        let b = block();
        let o = alloc(&b, ObjKind::Tuple, &[]);
        o.set_dead();
        o.set_dead();
        assert!(o.header().is_dead());
    }

    #[test]
    fn suspect_is_sticky_side_metadata() {
        let b = block();
        let o = alloc(&b, ObjKind::Ref, &[Value::Unit]);
        assert!(!o.is_suspect());
        o.mark_suspect();
        assert!(o.is_suspect());
        assert!(o.is_slow());
        assert!(
            !o.header().is_pinned(),
            "suspect state lives outside the header now"
        );
    }

    #[test]
    fn kill_swept_skips_marked() {
        let b = block();
        let o = alloc(&b, ObjKind::Tuple, &[]);
        o.set_entangled_space();
        o.try_mark();
        assert!(o.try_kill_swept().is_none(), "marked: retained");
        o.clear_mark();
        assert!(o.try_kill_swept().is_some());
        assert!(o.header().is_dead());
    }

    #[test]
    fn field_words_iterates_snapshot() {
        let b = block();
        let o = alloc(
            &b,
            ObjKind::Tuple,
            &[Value::Int(1), Value::Obj(ObjRef::new(0, 0))],
        );
        let ws: Vec<_> = o.field_words().collect();
        assert_eq!(ws.len(), 2);
        assert!(!ws[0].is_pointer());
        assert!(ws[1].is_pointer());
    }
}
