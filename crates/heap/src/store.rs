//! The store: the facade over blocks, heaps, and statistics.
//!
//! A [`Store`] owns the global block registry, the SFT classification
//! table, and the heap table, and provides the operations the runtime and
//! the collectors are built from: synchronization-free bump allocation
//! into a heap's size-class blocks, object access with forwarding
//! resolution, remoteness and LCA queries against a task's heap path, the
//! pin protocol, and the O(1) join.

use std::sync::Arc;

use crate::block::{size_class, Block, DEFAULT_BLOCK_WORDS, NUM_SIZE_CLASSES, OBJECT_HEADER_WORDS};
use crate::budget::TenantBudget;
use crate::events::{self, EventKind};
use crate::header::{Header, ObjKind};
use crate::heap::{HeapTable, RemsetEntry};
use crate::object::{Object, PinOutcome, OBJECT_OVERHEAD_BYTES};
use crate::registry::BlockRegistry;
use crate::sft::SftTable;
use crate::stats::StoreStats;
use crate::value::{ObjRef, Value, Word};

/// Store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Words per size-class block. Smaller blocks mean finer-grained
    /// reclamation but more registry traffic (ablation experiment E9).
    pub block_words: usize,
    /// Soft heap budget in bytes; `0` means unlimited. The store only
    /// *reports* pressure ([`Store::over_limit`]) — enforcement (forcing
    /// collections, surfacing a recoverable error) is the runtime's job,
    /// because only the runtime can run the collectors.
    pub heap_limit: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            block_words: DEFAULT_BLOCK_WORDS,
            heap_limit: 0,
        }
    }
}

/// A resolved handle to a live object: keeps the owning block alive while
/// the object is inspected. Most of the [`Object`] view's API is
/// re-exposed here by delegation, since the borrowed view cannot outlive
/// a `Deref` call.
#[derive(Clone, Debug)]
pub struct ObjHandle {
    block: Arc<Block>,
    word: u32,
}

impl ObjHandle {
    /// A view of the referenced object.
    pub fn obj(&self) -> Object<'_> {
        self.block.get(self.word)
    }

    /// The block holding the object.
    pub fn block(&self) -> &Arc<Block> {
        &self.block
    }

    /// The object's word offset in its block.
    pub fn word(&self) -> u32 {
        self.word
    }

    /// The object's location.
    pub fn objref(&self) -> ObjRef {
        ObjRef::new(self.block.id(), self.word)
    }

    // Delegation to the object view (see `Object` for docs).

    /// A snapshot of the object's header.
    pub fn header(&self) -> Header {
        self.obj().header()
    }

    /// The object's kind.
    pub fn kind(&self) -> ObjKind {
        self.obj().kind()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.obj().len()
    }

    /// True if the object has no fields.
    pub fn is_empty(&self) -> bool {
        self.obj().is_empty()
    }

    /// Size in bytes, for residency accounting.
    pub fn size_bytes(&self) -> usize {
        self.obj().size_bytes()
    }

    /// Loads field `i` as a raw word.
    pub fn field_word(&self, i: usize) -> Word {
        self.obj().field_word(i)
    }

    /// Loads field `i` as a decoded value.
    pub fn field(&self, i: usize) -> Value {
        self.obj().field(i)
    }

    /// Stores a raw word into field `i`.
    pub fn set_field_word(&self, i: usize, w: Word) {
        self.obj().set_field_word(i, w)
    }

    /// Stores a value into field `i`.
    pub fn set_field(&self, i: usize, v: Value) {
        self.obj().set_field(i, v)
    }

    /// Atomically replaces field `i`, returning the previous value.
    pub fn swap_field(&self, i: usize, v: Value) -> Value {
        self.obj().swap_field(i, v)
    }

    /// Atomically compares-and-swaps field `i`.
    pub fn cas_field(&self, i: usize, expected: Value, new: Value) -> Result<(), Value> {
        self.obj().cas_field(i, expected, new)
    }

    /// The forwarding destination, if the object has been evacuated.
    pub fn forward_ref(&self) -> Option<ObjRef> {
        self.obj().forward_ref()
    }

    /// Whether the object is an entanglement suspect.
    pub fn is_suspect(&self) -> bool {
        self.obj().is_suspect()
    }

    /// Attempts to pin the object at `level`.
    pub fn try_pin(&self, level: u16) -> PinOutcome {
        self.obj().try_pin(level)
    }
}

/// What a join produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinOutcome {
    /// Objects unpinned by the unpin-at-join rule.
    pub unpinned: usize,
    /// Live bytes merged from the children into the parent.
    pub merged_bytes: usize,
}

/// The global store.
#[derive(Debug)]
pub struct Store {
    blocks: BlockRegistry,
    heaps: HeapTable,
    // Shared so long-lived observers (the telemetry sampler thread) can
    // hold the counters without borrowing the store.
    stats: Arc<StoreStats>,
    // Shared with every block (write-through on owner/entangled changes)
    // and with the barriers (lock-free classification).
    sft: Arc<SftTable>,
    config: StoreConfig,
}

impl Default for Store {
    fn default() -> Self {
        Store::new(StoreConfig::default())
    }
}

impl Store {
    /// Creates an empty store.
    pub fn new(config: StoreConfig) -> Store {
        assert!(
            config.block_words >= OBJECT_HEADER_WORDS,
            "block_words must fit at least one header"
        );
        let stats = Arc::new(StoreStats::new());
        Store {
            blocks: BlockRegistry::new(Arc::clone(&stats)),
            heaps: HeapTable::new(),
            stats,
            sft: Arc::new(SftTable::new()),
            config,
        }
    }

    /// The block registry.
    pub fn blocks(&self) -> &BlockRegistry {
        &self.blocks
    }

    /// The block-classification table (the barrier fast tier's O(1)
    /// pointer → heap map).
    pub fn sft(&self) -> &Arc<SftTable> {
        &self.sft
    }

    /// The heap table.
    pub fn heaps(&self) -> &HeapTable {
        &self.heaps
    }

    /// The global counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// A shared handle to the counters, for observers (e.g. the telemetry
    /// sampler thread) that outlive any one borrow of the store.
    pub fn stats_shared(&self) -> Arc<StoreStats> {
        Arc::clone(&self.stats)
    }

    /// The configuration the store was built with.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    // ---- allocation ---------------------------------------------------

    /// Registers a fresh block of `capacity` words for `heap`/`class` and
    /// attributes it to the heap. The caller decides whether it becomes
    /// the heap's allocation block for that class.
    fn new_block(&self, heap: u32, class: usize, capacity: usize) -> Arc<Block> {
        mpl_fail::hit_hard("heap/block_map");
        let sft = Arc::clone(&self.sft);
        let block = self
            .blocks
            .register(|id| Block::new(id, heap, capacity, class, sft));
        self.heaps.info(heap).add_block(block.id());
        block
    }

    /// Allocates an object of `kind` with `fields` into `heap` (raw or
    /// canonical id). Lock-free on the fast path: one `fetch_add` on the
    /// bump cursor of the heap's current block for the object's size
    /// class, then plain word stores.
    pub fn alloc(&self, heap: u32, kind: ObjKind, fields: &[Word]) -> ObjRef {
        mpl_fail::hit_hard("heap/alloc");
        let heap = self.heaps.find(heap);
        let info = self.heaps.info(heap);
        let nwords = OBJECT_HEADER_WORDS + fields.len();
        let size = OBJECT_OVERHEAD_BYTES + 8 * fields.len();
        if nwords > self.config.block_words {
            // Oversized: a dedicated block, never shared with the bump path.
            let block = self.new_block(heap, NUM_SIZE_CLASSES - 1, nwords);
            let r = block
                .try_alloc(kind, fields)
                .expect("dedicated block fits its object");
            self.stats.on_alloc(size);
            return r;
        }
        let class = size_class(nwords);
        loop {
            if let Some(block) = info.alloc_block(class) {
                if let Some(r) = block.try_alloc(kind, fields) {
                    self.stats.on_alloc(size);
                    return r;
                }
            }
            let block = self.new_block(heap, class, self.config.block_words);
            info.set_alloc_block(class, Some(block));
        }
    }

    /// True when a heap limit is configured and an allocation of `extra`
    /// bytes would push the live-bytes gauge past it. One atomic load of
    /// the gauge — this runs on every pressure check in the allocation
    /// path, so it must not snapshot every counter. Best-effort: the
    /// gauge is updated by batched mutator flushes, so enforcement
    /// granularity is a stats-flush window, not a single allocation.
    #[inline]
    pub fn over_limit(&self, extra: usize) -> bool {
        self.config.heap_limit != 0
            && self.stats.live_bytes().saturating_add(extra) > self.config.heap_limit
    }

    /// Convenience: allocates with `Value` fields.
    pub fn alloc_values(&self, heap: u32, kind: ObjKind, fields: &[Value]) -> ObjRef {
        let words: Vec<Word> = fields.iter().map(|&v| Word::encode(v)).collect();
        self.alloc(heap, kind, &words)
    }

    // ---- access -------------------------------------------------------

    /// Returns a handle to the object at `r` (without following
    /// forwarding).
    ///
    /// # Panics
    ///
    /// Panics on a dangling reference (freed block or unpublished offset).
    pub fn handle(&self, r: ObjRef) -> ObjHandle {
        let block = self.blocks.get(r.block());
        // Validate eagerly so errors point at the bad reference.
        let _ = block.get(r.word());
        ObjHandle {
            block,
            word: r.word(),
        }
    }

    /// Follows forwarding pointers to the object's current location,
    /// compressing multi-hop chains: once the final location is known,
    /// the origin's forwarding word is repointed straight at it, so the
    /// chains that build up across repeated evacuations (each hop a
    /// registry query) are paid down to one hop on first traversal.
    pub fn resolve(&self, r: ObjRef) -> ObjRef {
        let mut cur = r;
        let mut hops = 0u32;
        loop {
            let h = self.handle(cur);
            match h.obj().forward_ref() {
                Some(next) => {
                    cur = next;
                    hops += 1;
                }
                None => {
                    if hops > 1 {
                        self.handle(r).obj().compress_forward(cur);
                    }
                    return cur;
                }
            }
        }
    }

    /// Fallible resolution for references derived from *indexes* (not the
    /// object graph): returns `None` if the chain touches a reclaimed
    /// block, which for an index entry means "the object is gone". Also
    /// path-compresses surviving multi-hop chains (the origin must still
    /// be live for that, so the repoint re-checks it).
    pub fn try_resolve(&self, r: ObjRef) -> Option<ObjRef> {
        let mut cur = r;
        let mut hops = 0u32;
        loop {
            let block = self.blocks.try_get(cur.block())?;
            match block.try_get(cur.word())?.forward_ref() {
                Some(next) => {
                    cur = next;
                    hops += 1;
                }
                None => {
                    if hops > 1 {
                        if let Some(b) = self.blocks.try_get(r.block()) {
                            if let Some(o) = b.try_get(r.word()) {
                                if o.header().is_forwarded() {
                                    o.compress_forward(cur);
                                }
                            }
                        }
                    }
                    return Some(cur);
                }
            }
        }
    }

    /// A handle to the current (forwarding-resolved) location of `r`.
    pub fn resolved_handle(&self, r: ObjRef) -> ObjHandle {
        self.handle(self.resolve(r))
    }

    /// The canonical heap owning the object at `r`.
    pub fn heap_of(&self, r: ObjRef) -> u32 {
        self.heaps.find(self.blocks.get(r.block()).owner())
    }

    // ---- remoteness ---------------------------------------------------

    /// True if the object is on the task's root-to-leaf heap `path`
    /// (canonical ids, indexed by depth). O(1).
    pub fn is_local(&self, path: &[u32], r: ObjRef) -> bool {
        let h = self.heap_of(r);
        let d = self.heaps.info(h).depth() as usize;
        d < path.len() && self.heaps.find(path[d]) == h
    }

    /// The entanglement level of an access from `path` to the object: the
    /// depth of the least common ancestor heap.
    pub fn entanglement_level(&self, path: &[u32], r: ObjRef) -> u16 {
        let owner = self.blocks.get(r.block()).owner();
        self.heaps.lca_depth_on_path(path, owner)
    }

    // ---- pin protocol --------------------------------------------------

    /// Pins the object at `level`, following forwarding if the local
    /// collector moved it first. Returns the resolved location and whether
    /// this call created the pin.
    pub fn pin(&self, r: ObjRef, level: u16) -> (ObjRef, bool) {
        let mut cur = r;
        loop {
            let h = self.handle(cur);
            match h.obj().try_pin(level) {
                PinOutcome::Forwarded(next) => cur = next,
                PinOutcome::NewlyPinned => {
                    self.heaps.register_entangled(h.block().owner(), cur, level);
                    h.block().add_pinned(1);
                    self.stats.on_pin(h.obj().size_bytes());
                    events::emit_obj(EventKind::Pin, cur, u32::from(level));
                    return (cur, true);
                }
                PinOutcome::AlreadyPinned { .. } => return (cur, false),
            }
        }
    }

    // ---- remembered sets ------------------------------------------------

    /// Records that `entry.src[entry.field]` holds a down-pointer into
    /// `dst_heap`.
    pub fn remember(&self, dst_heap: u32, entry: RemsetEntry) {
        self.heaps.remember_canonical(dst_heap, entry);
        self.stats.on_remset_insert();
        events::emit_obj(EventKind::RemsetInsert, entry.src, entry.field);
    }

    /// Publishes a batch of remembered-set entries into `dst_heap` (one
    /// table acquisition, one remset lock). This is the flush path for
    /// mutator-private remembered-set buffers; `remember` remains the
    /// unbuffered single-entry path.
    pub fn remember_batch(&self, dst_heap: u32, entries: &[RemsetEntry]) {
        if entries.is_empty() {
            return;
        }
        self.heaps.remember_canonical_batch(dst_heap, entries);
        self.stats.on_remset_flush(entries.len() as u64);
        if events::tracing_enabled() {
            for e in entries {
                events::emit_obj(EventKind::RemsetInsert, e.src, e.field);
            }
            events::emit(
                EventKind::RemsetFlush,
                self.heaps.find(dst_heap),
                0,
                entries.len() as u32,
            );
        }
    }

    // ---- census ---------------------------------------------------------

    /// A lock-free census of the heap's side metadata: per-size-class
    /// block/line occupancy, fragmentation inputs, pinned/suspect
    /// populations, and a per-tenant live-bytes breakdown keyed off
    /// `TenantBudget` heap ownership.
    ///
    /// The walk takes one registry snapshot ([`BlockRegistry::live_blocks`])
    /// and then reads each block's counters and bitmaps with plain atomic
    /// loads — no lock is held while blocks are examined, and mutators
    /// keep allocating throughout. The snapshot is therefore *consistent
    /// per block* but only approximately consistent across blocks, the
    /// same contract every gauge in `StoreStats` already has.
    pub fn census(&self) -> mpl_obs::HeapCensus {
        let blocks = self.blocks.live_blocks();
        let mut classes: Vec<mpl_obs::ClassCensus> = (0..NUM_SIZE_CLASSES)
            .map(|class| mpl_obs::ClassCensus {
                class,
                ..Default::default()
            })
            .collect();
        let mut tenants: std::collections::BTreeMap<String, mpl_obs::TenantCensus> =
            std::collections::BTreeMap::new();
        let mut unattributed_blocks = 0u64;
        let mut unattributed_live_bytes = 0u64;
        for b in &blocks {
            let live = b.live_bytes() as u64;
            let pinned = u64::from(b.pinned_count());
            let entangled = b.is_entangled();
            let c = &mut classes[b.size_class().min(NUM_SIZE_CLASSES - 1)];
            c.blocks += 1;
            c.entangled_blocks += u64::from(entangled);
            c.full_blocks += u64::from(b.is_full());
            c.clean_blocks += u64::from(b.line_map_clean());
            c.capacity_words += b.capacity() as u64;
            c.allocated_words += b.allocated() as u64;
            c.lines_total += b.line_count() as u64;
            c.lines_in_use += b.lines_in_use() as u64;
            c.lines_marked += b.marked_lines() as u64;
            c.objects += b.object_count() as u64;
            c.pinned_objects += pinned;
            c.suspect_objects += b.suspect_count() as u64;
            c.live_bytes += live;
            // Attribution: the block's (canonicalized) owner heap either
            // sits under a tenant budget or counts as runtime-internal.
            match self.budget_of(b.owner()) {
                Some(budget) => {
                    let row = tenants.entry(budget.name().to_string()).or_insert_with(|| {
                        mpl_obs::TenantCensus {
                            name: budget.name().to_string(),
                            blocks: 0,
                            entangled_blocks: 0,
                            live_bytes: 0,
                            pinned_objects: 0,
                            budget_live_bytes: budget.live_bytes() as u64,
                            budget_limit: budget.limit() as u64,
                        }
                    });
                    row.blocks += 1;
                    row.entangled_blocks += u64::from(entangled);
                    row.live_bytes += live;
                    row.pinned_objects += pinned;
                }
                None => {
                    unattributed_blocks += 1;
                    unattributed_live_bytes += live;
                }
            }
        }
        mpl_obs::HeapCensus {
            at_ns: mpl_obs::now_ns(),
            heaps: self.heaps.len() as u64,
            blocks: blocks.len() as u64,
            blocks_issued: self.blocks.issued() as u64,
            live_bytes: classes.iter().map(|c| c.live_bytes).sum(),
            classes,
            tenants: tenants.into_values().collect(),
            unattributed_blocks,
            unattributed_live_bytes,
            provenance: mpl_obs::provenance_summary(),
        }
    }

    // ---- fork / join -----------------------------------------------------

    /// Creates a root heap and returns its id.
    pub fn new_root_heap(&self) -> u32 {
        self.heaps.new_root()
    }

    /// Attaches a tenant budget to `heap` (canonicalized). Heaps forked
    /// under it from then on inherit the budget, so the tenant's whole
    /// subtree is accounted against one limit.
    pub fn set_heap_budget(&self, heap: u32, budget: Arc<TenantBudget>) {
        self.heaps
            .info(self.heaps.find(heap))
            .set_budget(Some(budget));
    }

    /// The tenant budget the (canonicalized) heap is accounted against,
    /// if any.
    pub fn budget_of(&self, heap: u32) -> Option<Arc<TenantBudget>> {
        self.heaps.info(self.heaps.find(heap)).budget()
    }

    /// Creates the two child heaps of a fork from `parent`.
    pub fn fork_heaps(&self, parent: u32) -> (u32, u32) {
        self.heaps.fork(self.heaps.find(parent))
    }

    /// Joins both children into `parent`: merges block lists, remembered
    /// sets, and entangled indexes, and applies the unpin-at-join rule —
    /// every object pinned at a level `>=` the parent's depth is unpinned,
    /// because the tasks that entangled it are no longer concurrent.
    ///
    /// Returns the number of objects unpinned and the live bytes merged
    /// in (so the resuming task can charge them toward its next local
    /// collection — merged garbage must not dodge the collector).
    pub fn join(&self, parent: u32, left: u32, right: u32) -> JoinOutcome {
        let parent = self.heaps.find(parent);
        let join_depth = self.heaps.info(parent).depth();
        let mut unpinned = 0;
        let mut merged_bytes: usize = 0;
        for child in [left, right] {
            let child = self.heaps.find(child);
            for bid in self.heaps.info(child).block_ids() {
                if let Some(b) = self.blocks.try_get(bid) {
                    merged_bytes += b.live_bytes();
                }
            }
        }

        // Candidates: entries recorded at level >= the join depth, from
        // both children and the parent's own accumulated index. Entries
        // below the join depth cannot unpin here and are left untouched
        // (this keeps join cost proportional to the pins that actually
        // resolve, not to every pin in flight).
        let mut candidates: Vec<ObjRef> = Vec::new();
        for child in [left, right] {
            let child = self.heaps.find(child);
            let info = self.heaps.info(child);
            let rems = info.take_remset();
            // Drain-and-seal linearizes against concurrent pin
            // registrations: anything racing this join lands on the
            // parent's index instead of vanishing into the merged-away
            // child's.
            let all = info.drain_and_seal_entangled(parent);
            self.heaps.merge_child(parent, child);
            let pinfo = self.heaps.info(parent);
            pinfo.extend_remset(rems);
            for r in all {
                let Some(r) = self.try_resolve(r) else {
                    continue; // the concurrent collector reclaimed it
                };
                let hd = self.handle(r);
                let hdr = hd.obj().header();
                if hdr.is_dead() || !hdr.is_pinned() {
                    continue;
                }
                if hdr.pin_level() >= join_depth {
                    candidates.push(r);
                } else {
                    // Still entangled with something outside this join.
                    pinfo.add_entangled(r, hdr.pin_level());
                }
            }
        }
        let pinfo = self.heaps.info(parent);
        candidates.extend(pinfo.take_entangled_at_or_below(join_depth));

        for r in candidates {
            let Some(r) = self.try_resolve(r) else {
                continue; // reclaimed concurrently
            };
            let h = self.handle(r);
            if h.obj().header().is_dead() {
                continue;
            }
            if h.obj().try_unpin_at_join(join_depth) {
                h.block().add_pinned(-1);
                self.stats.on_unpin(h.obj().size_bytes());
                events::emit_obj(EventKind::Unpin, r, u32::from(join_depth));
                unpinned += 1;
            } else if h.obj().header().is_pinned() {
                // A lowered pin: re-home it at its authoritative level.
                pinfo.add_entangled(r, h.obj().header().pin_level());
            }
        }
        JoinOutcome {
            unpinned,
            merged_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        Store::new(StoreConfig {
            block_words: 12,
            ..Default::default()
        })
    }

    #[test]
    fn alloc_spills_to_new_blocks() {
        let s = store();
        let h = s.new_root_heap();
        let refs: Vec<ObjRef> = (0..10)
            .map(|i| s.alloc_values(h, ObjKind::Tuple, &[Value::Int(i)]))
            .collect();
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(s.handle(*r).field(0), Value::Int(i as i64));
            assert_eq!(s.heap_of(*r), h);
        }
        assert!(s.blocks().issued() >= 3, "12-word blocks must spill");
        assert_eq!(s.stats().snapshot().allocs, 10);
        assert!(s.stats().snapshot().blocks_allocated >= 3);
    }

    #[test]
    fn size_classes_segregate_blocks() {
        let s = store();
        let h = s.new_root_heap();
        let small = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]); // 3 words: class 0
        let mid = s.alloc_values(h, ObjKind::Tuple, &[Value::Unit; 5]); // 7 words: class 1
        assert_ne!(
            small.block(),
            mid.block(),
            "different size classes bump different blocks"
        );
        let small2 = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(2)]);
        assert_eq!(small.block(), small2.block(), "same class shares a block");
    }

    #[test]
    fn oversized_objects_get_dedicated_blocks() {
        let s = store();
        let h = s.new_root_heap();
        // 34 words > block_words (12): dedicated block.
        let big = s.alloc_values(h, ObjKind::MutArr, &[Value::Unit; 32]);
        let hd = s.handle(big);
        assert_eq!(hd.len(), 32);
        assert!(hd.block().capacity() >= 34);
        assert!(
            hd.block().is_full(),
            "a dedicated block holds only its object"
        );
    }

    #[test]
    fn locality_follows_the_path() {
        let s = store();
        let root = s.new_root_heap();
        let (l, r) = s.fork_heaps(root);
        let in_root = s.alloc_values(root, ObjKind::Tuple, &[]);
        let in_l = s.alloc_values(l, ObjKind::Tuple, &[]);
        let in_r = s.alloc_values(r, ObjKind::Tuple, &[]);

        let path_l = vec![root, l];
        assert!(s.is_local(&path_l, in_root));
        assert!(s.is_local(&path_l, in_l));
        assert!(!s.is_local(&path_l, in_r), "sibling allocation is remote");
        assert_eq!(s.entanglement_level(&path_l, in_r), 0);
    }

    #[test]
    fn join_merges_and_localizes() {
        let s = store();
        let root = s.new_root_heap();
        let (l, r) = s.fork_heaps(root);
        let in_l = s.alloc_values(l, ObjKind::Tuple, &[]);
        let in_r = s.alloc_values(r, ObjKind::Tuple, &[]);
        s.join(root, l, r);
        let path = vec![root];
        assert!(s.is_local(&path, in_l));
        assert!(s.is_local(&path, in_r));
        assert_eq!(s.heap_of(in_l), root);
        assert_eq!(s.heap_of(in_r), root);
    }

    #[test]
    fn pin_and_unpin_at_join() {
        let s = store();
        let root = s.new_root_heap();
        let (l, r) = s.fork_heaps(root);
        let in_r = s.alloc_values(r, ObjKind::Ref, &[Value::Unit]);
        // Task on the left path reads a pointer into the right heap:
        // entanglement at LCA depth 0.
        let path_l = vec![root, l];
        let level = s.entanglement_level(&path_l, in_r);
        let (pinned_ref, newly) = s.pin(in_r, level);
        assert!(newly);
        assert_eq!(pinned_ref, in_r);
        assert!(s.handle(in_r).header().is_pinned());
        assert_eq!(s.stats().snapshot().pins, 1);
        let (_, again) = s.pin(in_r, level);
        assert!(!again, "second pin is idempotent");

        // Join at depth 0 unpins (level 0 >= join depth 0).
        let out = s.join(root, l, r);
        assert_eq!(out.unpinned, 1);
        assert!(out.merged_bytes > 0, "children contributed live bytes");
        assert!(!s.handle(in_r).header().is_pinned());
        assert_eq!(s.stats().snapshot().unpins, 1);
        assert_eq!(s.stats().snapshot().pinned_bytes, 0);
    }

    #[test]
    fn deep_pin_survives_inner_join() {
        let s = store();
        let root = s.new_root_heap();
        let (l, r) = s.fork_heaps(root);
        let (ll, lr) = s.fork_heaps(l);
        // Object in ll entangled with the far-right task: LCA is the root.
        let x = s.alloc_values(ll, ObjKind::Ref, &[Value::Unit]);
        let path_r = vec![root, r];
        let level = s.entanglement_level(&path_r, x);
        assert_eq!(level, 0);
        s.pin(x, level);

        // Inner join at depth 1 must NOT unpin (level 0 < 1).
        s.join(l, ll, lr);
        assert!(s.handle(x).header().is_pinned());

        // Outer join at depth 0 unpins.
        s.join(root, l, r);
        assert!(!s.handle(x).header().is_pinned());
    }

    #[test]
    fn remember_canonicalizes_heap() {
        let s = store();
        let root = s.new_root_heap();
        let (l, r) = s.fork_heaps(root);
        s.join(root, l, r);
        // Remember against the merged id: lands on the canonical heap.
        s.remember(
            l,
            RemsetEntry {
                src: ObjRef::new(0, 0),
                field: 0,
            },
        );
        assert_eq!(s.heaps().info(root).remset_len(), 1);
        assert_eq!(s.stats().snapshot().remset_inserts, 1);
    }

    #[test]
    fn resolve_follows_forwarding() {
        let s = store();
        let h = s.new_root_heap();
        let a = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]);
        let b = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(2)]);
        s.handle(a).obj().try_forward(b).unwrap();
        assert_eq!(s.resolve(a), b);
        assert_eq!(s.resolved_handle(a).field(0), Value::Int(2));
    }

    #[test]
    fn census_counts_blocks_objects_and_tenants() {
        let s = store();
        let root = s.new_root_heap();
        s.set_heap_budget(root, TenantBudget::new("acme", 0));
        let other = s.new_root_heap(); // no budget: unattributed
        for i in 0..10 {
            s.alloc_values(root, ObjKind::Tuple, &[Value::Int(i)]);
        }
        s.alloc_values(other, ObjKind::Tuple, &[Value::Unit; 5]);
        let census = s.census();
        assert_eq!(census.blocks as usize, s.blocks().live());
        assert_eq!(census.live_bytes as usize, s.blocks().total_live_bytes());
        assert_eq!(census.objects(), 11);
        assert_eq!(census.classes.len(), NUM_SIZE_CLASSES);
        assert_eq!(census.classes[0].objects, 10, "3-word tuples are class 0");
        assert_eq!(census.classes[1].objects, 1, "7-word tuple is class 1");
        assert_eq!(census.tenants.len(), 1);
        let t = &census.tenants[0];
        assert_eq!(t.name, "acme");
        assert!(t.blocks >= 1);
        assert!(t.live_bytes > 0);
        assert!(census.unattributed_blocks >= 1);
        assert_eq!(
            t.live_bytes + census.unattributed_live_bytes,
            census.live_bytes
        );
        // Pin an object: the census sees it in the pinned population.
        let r = s.alloc_values(root, ObjKind::Ref, &[Value::Unit]);
        s.pin(r, 0);
        assert_eq!(s.census().pinned_objects(), 1);
    }

    #[test]
    fn resolve_compresses_multi_hop_chains() {
        let s = store();
        let h = s.new_root_heap();
        let a = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]);
        let b = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(2)]);
        let c = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(3)]);
        s.handle(a).obj().try_forward(b).unwrap();
        s.handle(b).obj().try_forward(c).unwrap();
        assert_eq!(s.resolve(a), c);
        // The chain was compressed: a now forwards straight to c.
        assert_eq!(s.handle(a).obj().forward_ref(), Some(c));
        assert_eq!(s.try_resolve(a), Some(c));
    }
}
