//! Global memory-manager counters: the paper's cost metrics, measured.
//!
//! The paper defines cost metrics to reason about the time and space cost
//! of entanglement: the number of entangled reads/writes (each incurring a
//! constant-cost pin), the footprint of pinned objects (the space the local
//! collector must leave in place), and the ordinary allocation/collection
//! volumes. This module is the measured counterpart: every counter here is
//! reported by the experiment harness.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Monotonic counters plus the live-bytes gauge.
#[derive(Debug, Default)]
pub struct StoreStats {
    // Mutator-side.
    pub(crate) allocs: AtomicU64,
    pub(crate) alloc_bytes: AtomicU64,
    pub(crate) barrier_reads: AtomicU64,
    pub(crate) barrier_writes: AtomicU64,
    // Barrier tier split: "fast" completions never touched the heap
    // table, a lock, or an `Arc` clone; "slow" entries ran the full
    // locate/LCA machinery (and possibly pinned or remembered).
    pub(crate) barrier_read_fast: AtomicU64,
    pub(crate) barrier_read_slow: AtomicU64,
    pub(crate) barrier_write_fast: AtomicU64,
    pub(crate) barrier_write_slow: AtomicU64,
    pub(crate) entangled_reads: AtomicU64,
    pub(crate) entangled_writes: AtomicU64,
    pub(crate) pins: AtomicU64,
    pub(crate) unpins: AtomicU64,
    pub(crate) remset_inserts: AtomicU64,
    // Mutator-private remembered-set write buffers.
    pub(crate) remset_buffered: AtomicU64,
    pub(crate) remset_dedup_hits: AtomicU64,
    pub(crate) remset_flushes: AtomicU64,
    // Collector-side.
    pub(crate) lgc_runs: AtomicU64,
    pub(crate) lgc_copied_bytes: AtomicU64,
    pub(crate) lgc_reclaimed_bytes: AtomicU64,
    pub(crate) lgc_entangled_retained_bytes: AtomicU64,
    pub(crate) lgc_pause_ns_total: AtomicU64,
    pub(crate) lgc_pause_ns_max: AtomicU64,
    pub(crate) cgc_runs: AtomicU64,
    pub(crate) cgc_swept_bytes: AtomicU64,
    pub(crate) cgc_pause_ns_total: AtomicU64,
    pub(crate) cgc_pause_ns_max: AtomicU64,
    // Parallel CGC work-packet machinery.
    pub(crate) cgc_packets: AtomicU64,
    pub(crate) cgc_packet_retries: AtomicU64,
    // Block-grained allocator counters.
    pub(crate) blocks_allocated: AtomicU64,
    pub(crate) blocks_freed: AtomicU64,
    pub(crate) lines_swept: AtomicU64,
    // Corruption canary: a trace reached a dead-marked object. Always-on
    // (release builds included) because the matching debug assertion
    // vanishes under `--release`; any nonzero value is a collector bug.
    pub(crate) lgc_dead_traced: AtomicU64,
    // Memory-pressure path (heap limit set and approached).
    pub(crate) gc_forced_by_pressure: AtomicU64,
    pub(crate) alloc_retries: AtomicU64,
    pub(crate) alloc_failures: AtomicU64,
    // Cooperative cancellation (deadlines, explicit cancel, watchdog,
    // alloc escalation).
    pub(crate) cancel_requested: AtomicU64,
    pub(crate) cancel_unwound: AtomicU64,
    // Serving-layer robustness counters (recorded by mpl-serve through
    // the runtime, kept here so one snapshot covers the whole stack).
    pub(crate) requests_timed_out: AtomicU64,
    pub(crate) request_retries: AtomicU64,
    pub(crate) breaker_open: AtomicU64,
    // Gauges.
    pub(crate) live_bytes: AtomicUsize,
    pub(crate) max_live_bytes: AtomicUsize,
    pub(crate) pinned_bytes: AtomicUsize,
    pub(crate) max_pinned_bytes: AtomicUsize,
}

/// A plain-value snapshot of [`StoreStats`]. Field names mirror the
/// counters documented there.
#[allow(missing_docs)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub allocs: u64,
    pub alloc_bytes: u64,
    pub barrier_reads: u64,
    pub barrier_writes: u64,
    /// Mutable reads completed on the barrier's fast tier: no lock, no
    /// heap-table acquisition, no `Arc` clone (the suspects header check
    /// passed, or the loaded value was an immediate).
    pub barrier_read_fast: u64,
    /// Mutable reads that entered the slow tier (locate + LCA, possibly
    /// pin).
    pub barrier_read_slow: u64,
    /// Mutable writes completed on the fast tier (immediate store, or a
    /// pointer store whose source and target are both in the task's own
    /// leaf heap — provably not a down-pointer, no table acquisition).
    pub barrier_write_fast: u64,
    /// Mutable writes that entered the slow tier (locality/LCA checks,
    /// possibly pin + remembered-set insert).
    pub barrier_write_slow: u64,
    pub entangled_reads: u64,
    pub entangled_writes: u64,
    pub pins: u64,
    pub unpins: u64,
    pub remset_inserts: u64,
    /// Down-pointer entries recorded into a mutator-private remembered-set
    /// buffer (deduplicated; published to the owning heap at flush).
    pub remset_buffered: u64,
    /// Buffered remembered-set inserts suppressed by per-object dedup.
    pub remset_dedup_hits: u64,
    /// Remembered-set buffer flushes (join, GC handshake, mutator drop,
    /// capacity).
    pub remset_flushes: u64,
    pub lgc_runs: u64,
    pub lgc_copied_bytes: u64,
    pub lgc_reclaimed_bytes: u64,
    pub lgc_entangled_retained_bytes: u64,
    /// Total stop-the-task time spent in local collections. Unlike CGC
    /// pauses (timed by the runtime around the collector call), LGC
    /// pauses are timed inside `collect_local` itself, so every caller —
    /// allocation-triggered or forced — is covered.
    pub lgc_pause_ns_total: u64,
    /// Longest single local-collection pause.
    pub lgc_pause_ns_max: u64,
    pub cgc_runs: u64,
    pub cgc_swept_bytes: u64,
    pub cgc_pause_ns_total: u64,
    pub cgc_pause_ns_max: u64,
    /// CGC work packets executed (trace, sweep, and epilogue units).
    pub cgc_packets: u64,
    /// CGC packets re-enqueued after an injected or real packet panic.
    pub cgc_packet_retries: u64,
    /// Size-class blocks issued by the registry.
    pub blocks_allocated: u64,
    /// Blocks freed (wholesale or after a by-line sweep emptied them).
    pub blocks_freed: u64,
    /// Lines reclaimed by line-mark sweeps (lines in use minus marked
    /// lines, summed over swept blocks).
    pub lines_swept: u64,
    /// Corruption canary: traces that reached a dead-marked object.
    /// Counted in every build profile; any nonzero value is a collector
    /// soundness bug (see `mpl-gc`'s audit layer).
    pub lgc_dead_traced: u64,
    /// Collections forced because an allocation found the heap limit
    /// (`RuntimeConfig::with_heap_limit`) exhausted.
    pub gc_forced_by_pressure: u64,
    /// Allocation attempts retried after a pressure-forced collection.
    pub alloc_retries: u64,
    /// Allocations that still exceeded the heap limit after every forced
    /// collection and surfaced a recoverable `AllocError`.
    pub alloc_failures: u64,
    /// Tasks that observed a tripped cancellation token and began a
    /// cancellation unwind (one per live task of the cancelled tree).
    pub cancel_requested: u64,
    /// Runs that finished unwinding and surfaced `RunError::Cancelled`
    /// (one per cancelled `Runtime::try_run*` call).
    pub cancel_unwound: u64,
    /// Server requests whose deadline expired (before any retry).
    pub requests_timed_out: u64,
    /// Server retry attempts after a timed-out request (with backoff).
    pub request_retries: u64,
    /// Per-tenant circuit-breaker open transitions in the server.
    pub breaker_open: u64,
    pub live_bytes: usize,
    pub max_live_bytes: usize,
    pub pinned_bytes: usize,
    pub max_pinned_bytes: usize,
    // Scheduler counters. The store itself never sets these (scheduling
    // is not a memory-manager concern); the runtime overlays them from
    // the work-stealing executor so experiment harnesses get one
    // combined snapshot. Zero when the pool is inactive.
    pub sched_pushes: u64,
    pub sched_steals: u64,
    pub sched_sequentialized: u64,
    pub sched_parks: u64,
    pub sched_unparks: u64,
    // GC audit counters. Like the scheduler counters, these live outside
    // the store (in `mpl-gc`'s audit layer, which is process-global) and
    // are overlaid by the runtime. Zero when auditing was never enabled.
    pub audit_runs: u64,
    pub audit_objects_checked: u64,
    pub audit_events: u64,
    pub audit_ring_overflows: u64,
    /// Failpoint fires. Like the audit counters this is process-global
    /// (it lives in `mpl-fail`) and overlaid by the runtime; zero when no
    /// failpoints were ever armed.
    pub failpoint_fires: u64,
}

impl StoreStats {
    /// Creates zeroed counters.
    pub fn new() -> StoreStats {
        StoreStats::default()
    }

    /// Takes a consistent-enough snapshot (individual counters are loaded
    /// independently; exactness across counters is not required for
    /// reporting).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            allocs: self.allocs.load(Ordering::Relaxed),
            alloc_bytes: self.alloc_bytes.load(Ordering::Relaxed),
            barrier_reads: self.barrier_reads.load(Ordering::Relaxed),
            barrier_writes: self.barrier_writes.load(Ordering::Relaxed),
            barrier_read_fast: self.barrier_read_fast.load(Ordering::Relaxed),
            barrier_read_slow: self.barrier_read_slow.load(Ordering::Relaxed),
            barrier_write_fast: self.barrier_write_fast.load(Ordering::Relaxed),
            barrier_write_slow: self.barrier_write_slow.load(Ordering::Relaxed),
            entangled_reads: self.entangled_reads.load(Ordering::Relaxed),
            entangled_writes: self.entangled_writes.load(Ordering::Relaxed),
            pins: self.pins.load(Ordering::Relaxed),
            unpins: self.unpins.load(Ordering::Relaxed),
            remset_inserts: self.remset_inserts.load(Ordering::Relaxed),
            remset_buffered: self.remset_buffered.load(Ordering::Relaxed),
            remset_dedup_hits: self.remset_dedup_hits.load(Ordering::Relaxed),
            remset_flushes: self.remset_flushes.load(Ordering::Relaxed),
            lgc_runs: self.lgc_runs.load(Ordering::Relaxed),
            lgc_copied_bytes: self.lgc_copied_bytes.load(Ordering::Relaxed),
            lgc_reclaimed_bytes: self.lgc_reclaimed_bytes.load(Ordering::Relaxed),
            lgc_entangled_retained_bytes: self.lgc_entangled_retained_bytes.load(Ordering::Relaxed),
            lgc_pause_ns_total: self.lgc_pause_ns_total.load(Ordering::Relaxed),
            lgc_pause_ns_max: self.lgc_pause_ns_max.load(Ordering::Relaxed),
            cgc_runs: self.cgc_runs.load(Ordering::Relaxed),
            cgc_swept_bytes: self.cgc_swept_bytes.load(Ordering::Relaxed),
            cgc_pause_ns_total: self.cgc_pause_ns_total.load(Ordering::Relaxed),
            cgc_pause_ns_max: self.cgc_pause_ns_max.load(Ordering::Relaxed),
            cgc_packets: self.cgc_packets.load(Ordering::Relaxed),
            cgc_packet_retries: self.cgc_packet_retries.load(Ordering::Relaxed),
            blocks_allocated: self.blocks_allocated.load(Ordering::Relaxed),
            blocks_freed: self.blocks_freed.load(Ordering::Relaxed),
            lines_swept: self.lines_swept.load(Ordering::Relaxed),
            lgc_dead_traced: self.lgc_dead_traced.load(Ordering::Relaxed),
            gc_forced_by_pressure: self.gc_forced_by_pressure.load(Ordering::Relaxed),
            alloc_retries: self.alloc_retries.load(Ordering::Relaxed),
            alloc_failures: self.alloc_failures.load(Ordering::Relaxed),
            cancel_requested: self.cancel_requested.load(Ordering::Relaxed),
            cancel_unwound: self.cancel_unwound.load(Ordering::Relaxed),
            requests_timed_out: self.requests_timed_out.load(Ordering::Relaxed),
            request_retries: self.request_retries.load(Ordering::Relaxed),
            breaker_open: self.breaker_open.load(Ordering::Relaxed),
            live_bytes: self.live_bytes.load(Ordering::Relaxed),
            max_live_bytes: self.max_live_bytes.load(Ordering::Relaxed),
            pinned_bytes: self.pinned_bytes.load(Ordering::Relaxed),
            max_pinned_bytes: self.max_pinned_bytes.load(Ordering::Relaxed),
            // Scheduler counters live outside the store; the runtime
            // overlays them (see the field comments on StatsSnapshot).
            ..StatsSnapshot::default()
        }
    }

    pub(crate) fn count(counter: &AtomicU64, delta: u64) {
        counter.fetch_add(delta, Ordering::Relaxed);
    }

    /// The live-bytes gauge, read directly (one atomic load). Pressure
    /// checks on the allocation path use this instead of building a full
    /// [`StatsSnapshot`].
    #[inline]
    pub fn live_bytes(&self) -> usize {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Adds to the live-bytes gauge and updates the high-water mark.
    pub fn add_live_bytes(&self, bytes: usize) {
        let now = self.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.raise_max(&self.max_live_bytes, now);
    }

    /// Subtracts from the live-bytes gauge (saturating).
    pub fn sub_live_bytes(&self, bytes: usize) {
        sub_saturating(&self.live_bytes, bytes);
    }

    /// Adds to the pinned-bytes gauge and updates its high-water mark.
    pub fn add_pinned_bytes(&self, bytes: usize) {
        let now = self.pinned_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.raise_max(&self.max_pinned_bytes, now);
    }

    /// Subtracts from the pinned-bytes gauge (saturating).
    pub fn sub_pinned_bytes(&self, bytes: usize) {
        sub_saturating(&self.pinned_bytes, bytes);
    }

    // ---- event recorders (used by the runtime and collector crates) ----

    /// Records an allocation of `bytes`.
    pub fn on_alloc(&self, bytes: usize) {
        Self::count(&self.allocs, 1);
        Self::count(&self.alloc_bytes, bytes as u64);
        self.add_live_bytes(bytes);
    }

    /// Records a batch of allocations (task-buffered fast path).
    pub fn on_alloc_batch(&self, allocs: u64, bytes: usize) {
        Self::count(&self.allocs, allocs);
        Self::count(&self.alloc_bytes, bytes as u64);
        self.add_live_bytes(bytes);
    }

    /// Records a batch of barrier events (task-buffered fast path).
    pub fn on_barrier_batch(
        &self,
        reads: u64,
        writes: u64,
        entangled_reads: u64,
        entangled_writes: u64,
    ) {
        Self::count(&self.barrier_reads, reads);
        Self::count(&self.barrier_writes, writes);
        Self::count(&self.entangled_reads, entangled_reads);
        Self::count(&self.entangled_writes, entangled_writes);
    }

    /// Records a batch of per-tier barrier completions (task-buffered
    /// fast path). See the tier definitions on [`StatsSnapshot`].
    pub fn on_barrier_tiers(
        &self,
        read_fast: u64,
        read_slow: u64,
        write_fast: u64,
        write_slow: u64,
    ) {
        Self::count(&self.barrier_read_fast, read_fast);
        Self::count(&self.barrier_read_slow, read_slow);
        Self::count(&self.barrier_write_fast, write_fast);
        Self::count(&self.barrier_write_slow, write_slow);
    }

    /// Records a batch of mutator-private remembered-set buffer events.
    pub fn on_remset_buffer_batch(&self, buffered: u64, dedup_hits: u64) {
        Self::count(&self.remset_buffered, buffered);
        Self::count(&self.remset_dedup_hits, dedup_hits);
    }

    /// Records a remembered-set buffer flush that published `entries`
    /// entries into heap remembered sets.
    pub fn on_remset_flush(&self, entries: u64) {
        Self::count(&self.remset_flushes, 1);
        Self::count(&self.remset_inserts, entries);
    }

    /// Records a barriered mutable read.
    pub fn on_barrier_read(&self) {
        Self::count(&self.barrier_reads, 1);
    }

    /// Records a barriered mutable write.
    pub fn on_barrier_write(&self) {
        Self::count(&self.barrier_writes, 1);
    }

    /// Records an entangled read (the read barrier found a remote object).
    pub fn on_entangled_read(&self) {
        Self::count(&self.entangled_reads, 1);
    }

    /// Records an entangled write (a pointer was written into a remote
    /// object, or a remote pointer was written).
    pub fn on_entangled_write(&self) {
        Self::count(&self.entangled_writes, 1);
    }

    /// Records a newly pinned object of `bytes`.
    pub fn on_pin(&self, bytes: usize) {
        Self::count(&self.pins, 1);
        self.add_pinned_bytes(bytes);
    }

    /// Records an unpinned object of `bytes`.
    pub fn on_unpin(&self, bytes: usize) {
        Self::count(&self.unpins, 1);
        self.sub_pinned_bytes(bytes);
    }

    /// Records a remembered-set insertion.
    pub fn on_remset_insert(&self) {
        Self::count(&self.remset_inserts, 1);
    }

    /// Records that a trace reached a dead-marked object — heap
    /// corruption. Always counted, so release builds surface the bug in
    /// [`StatsSnapshot::lgc_dead_traced`] even though the debug
    /// assertion is compiled out.
    pub fn on_dead_traced(&self) {
        Self::count(&self.lgc_dead_traced, 1);
    }

    /// Records a collection forced by heap-limit pressure.
    pub fn on_gc_forced_by_pressure(&self) {
        Self::count(&self.gc_forced_by_pressure, 1);
    }

    /// Records an allocation retried after a pressure-forced collection.
    pub fn on_alloc_retry(&self) {
        Self::count(&self.alloc_retries, 1);
    }

    /// Records an allocation that exceeded the heap limit even after
    /// forced collections and surfaced a recoverable error.
    pub fn on_alloc_failure(&self) {
        Self::count(&self.alloc_failures, 1);
    }

    /// Records a task starting a cancellation unwind (it observed a
    /// tripped token at a poll point).
    pub fn on_cancel_requested(&self) {
        Self::count(&self.cancel_requested, 1);
    }

    /// Records a run that finished unwinding after cancellation.
    pub fn on_cancel_unwound(&self) {
        Self::count(&self.cancel_unwound, 1);
    }

    /// Records a server request whose deadline expired.
    pub fn on_request_timeout(&self) {
        Self::count(&self.requests_timed_out, 1);
    }

    /// Records a server retry attempt after a timeout.
    pub fn on_request_retry(&self) {
        Self::count(&self.request_retries, 1);
    }

    /// Records a circuit breaker transitioning to open.
    pub fn on_breaker_open(&self) {
        Self::count(&self.breaker_open, 1);
    }

    /// Records a completed local collection.
    pub fn on_lgc(&self, copied_bytes: u64, reclaimed_bytes: u64, retained_entangled_bytes: u64) {
        Self::count(&self.lgc_runs, 1);
        Self::count(&self.lgc_copied_bytes, copied_bytes);
        Self::count(&self.lgc_reclaimed_bytes, reclaimed_bytes);
        Self::count(&self.lgc_entangled_retained_bytes, retained_entangled_bytes);
        self.sub_live_bytes(reclaimed_bytes as usize);
    }

    /// Records a completed concurrent collection and its pause.
    pub fn on_cgc(&self, swept_bytes: u64) {
        Self::count(&self.cgc_runs, 1);
        Self::count(&self.cgc_swept_bytes, swept_bytes);
        self.sub_live_bytes(swept_bytes as usize);
    }

    /// Records CGC work-packet executions (and any panic-retry
    /// re-enqueues) from a finished cycle.
    pub fn on_cgc_packets(&self, packets: u64, retries: u64) {
        Self::count(&self.cgc_packets, packets);
        Self::count(&self.cgc_packet_retries, retries);
    }

    /// Records a block issued by the registry.
    pub fn on_block_alloc(&self) {
        Self::count(&self.blocks_allocated, 1);
    }

    /// Records a block freed back to the registry.
    pub fn on_block_free(&self) {
        Self::count(&self.blocks_freed, 1);
    }

    /// Records lines reclaimed by a line-mark sweep.
    pub fn on_lines_swept(&self, lines: u64) {
        Self::count(&self.lines_swept, lines);
    }

    /// Records a concurrent-collection pause duration. Also feeds the
    /// telemetry pause histogram (a no-op unless telemetry is enabled).
    pub fn on_cgc_pause(&self, ns: u64) {
        Self::count(&self.cgc_pause_ns_total, ns);
        raise_max_u64(&self.cgc_pause_ns_max, ns);
        mpl_obs::record_duration(mpl_obs::Metric::CgcPause, ns);
    }

    /// Records a local-collection pause duration (the whole
    /// `collect_local` stop-the-task window). Also feeds the telemetry
    /// pause histogram (a no-op unless telemetry is enabled).
    pub fn on_lgc_pause(&self, ns: u64) {
        Self::count(&self.lgc_pause_ns_total, ns);
        raise_max_u64(&self.lgc_pause_ns_max, ns);
        mpl_obs::record_duration(mpl_obs::Metric::LgcPause, ns);
    }

    fn raise_max(&self, max: &AtomicUsize, candidate: usize) {
        let mut cur = max.load(Ordering::Relaxed);
        while candidate > cur {
            match max.compare_exchange_weak(cur, candidate, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }
}

fn raise_max_u64(max: &AtomicU64, candidate: u64) {
    let mut cur = max.load(Ordering::Relaxed);
    while candidate > cur {
        match max.compare_exchange_weak(cur, candidate, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(c) => cur = c,
        }
    }
}

fn sub_saturating(gauge: &AtomicUsize, bytes: usize) {
    let mut cur = gauge.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_sub(bytes);
        match gauge.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

impl StatsSnapshot {
    /// Entangled accesses (reads + writes) — the paper's primary time-cost
    /// metric for entanglement.
    pub fn entangled_accesses(&self) -> u64 {
        self.entangled_reads + self.entangled_writes
    }

    /// The per-interval view between an `earlier` snapshot and this one:
    /// monotonic counters are subtracted (saturating, so reset counters or
    /// snapshot skew never underflow), gauges and high-water marks
    /// (`live_bytes`/`pinned_bytes`, their maxima, and the pause maxima)
    /// keep this snapshot's value. Used by the telemetry sampler and the
    /// bench harnesses instead of hand-rolled field subtraction.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let d = |a: u64, b: u64| a.saturating_sub(b);
        StatsSnapshot {
            allocs: d(self.allocs, earlier.allocs),
            alloc_bytes: d(self.alloc_bytes, earlier.alloc_bytes),
            barrier_reads: d(self.barrier_reads, earlier.barrier_reads),
            barrier_writes: d(self.barrier_writes, earlier.barrier_writes),
            barrier_read_fast: d(self.barrier_read_fast, earlier.barrier_read_fast),
            barrier_read_slow: d(self.barrier_read_slow, earlier.barrier_read_slow),
            barrier_write_fast: d(self.barrier_write_fast, earlier.barrier_write_fast),
            barrier_write_slow: d(self.barrier_write_slow, earlier.barrier_write_slow),
            entangled_reads: d(self.entangled_reads, earlier.entangled_reads),
            entangled_writes: d(self.entangled_writes, earlier.entangled_writes),
            pins: d(self.pins, earlier.pins),
            unpins: d(self.unpins, earlier.unpins),
            remset_inserts: d(self.remset_inserts, earlier.remset_inserts),
            remset_buffered: d(self.remset_buffered, earlier.remset_buffered),
            remset_dedup_hits: d(self.remset_dedup_hits, earlier.remset_dedup_hits),
            remset_flushes: d(self.remset_flushes, earlier.remset_flushes),
            lgc_runs: d(self.lgc_runs, earlier.lgc_runs),
            lgc_copied_bytes: d(self.lgc_copied_bytes, earlier.lgc_copied_bytes),
            lgc_reclaimed_bytes: d(self.lgc_reclaimed_bytes, earlier.lgc_reclaimed_bytes),
            lgc_entangled_retained_bytes: d(
                self.lgc_entangled_retained_bytes,
                earlier.lgc_entangled_retained_bytes,
            ),
            lgc_pause_ns_total: d(self.lgc_pause_ns_total, earlier.lgc_pause_ns_total),
            lgc_pause_ns_max: self.lgc_pause_ns_max,
            cgc_runs: d(self.cgc_runs, earlier.cgc_runs),
            cgc_swept_bytes: d(self.cgc_swept_bytes, earlier.cgc_swept_bytes),
            cgc_pause_ns_total: d(self.cgc_pause_ns_total, earlier.cgc_pause_ns_total),
            cgc_pause_ns_max: self.cgc_pause_ns_max,
            cgc_packets: d(self.cgc_packets, earlier.cgc_packets),
            cgc_packet_retries: d(self.cgc_packet_retries, earlier.cgc_packet_retries),
            blocks_allocated: d(self.blocks_allocated, earlier.blocks_allocated),
            blocks_freed: d(self.blocks_freed, earlier.blocks_freed),
            lines_swept: d(self.lines_swept, earlier.lines_swept),
            lgc_dead_traced: d(self.lgc_dead_traced, earlier.lgc_dead_traced),
            gc_forced_by_pressure: d(self.gc_forced_by_pressure, earlier.gc_forced_by_pressure),
            alloc_retries: d(self.alloc_retries, earlier.alloc_retries),
            alloc_failures: d(self.alloc_failures, earlier.alloc_failures),
            cancel_requested: d(self.cancel_requested, earlier.cancel_requested),
            cancel_unwound: d(self.cancel_unwound, earlier.cancel_unwound),
            requests_timed_out: d(self.requests_timed_out, earlier.requests_timed_out),
            request_retries: d(self.request_retries, earlier.request_retries),
            breaker_open: d(self.breaker_open, earlier.breaker_open),
            live_bytes: self.live_bytes,
            max_live_bytes: self.max_live_bytes,
            pinned_bytes: self.pinned_bytes,
            max_pinned_bytes: self.max_pinned_bytes,
            sched_pushes: d(self.sched_pushes, earlier.sched_pushes),
            sched_steals: d(self.sched_steals, earlier.sched_steals),
            sched_sequentialized: d(self.sched_sequentialized, earlier.sched_sequentialized),
            sched_parks: d(self.sched_parks, earlier.sched_parks),
            sched_unparks: d(self.sched_unparks, earlier.sched_unparks),
            audit_runs: d(self.audit_runs, earlier.audit_runs),
            audit_objects_checked: d(self.audit_objects_checked, earlier.audit_objects_checked),
            audit_events: d(self.audit_events, earlier.audit_events),
            audit_ring_overflows: d(self.audit_ring_overflows, earlier.audit_ring_overflows),
            failpoint_fires: d(self.failpoint_fires, earlier.failpoint_fires),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_track_high_water() {
        let s = StoreStats::new();
        s.add_live_bytes(100);
        s.add_live_bytes(50);
        s.sub_live_bytes(120);
        assert_eq!(s.snapshot().live_bytes, 30);
        assert_eq!(s.snapshot().max_live_bytes, 150);
        s.sub_live_bytes(1000);
        assert_eq!(s.snapshot().live_bytes, 0, "saturating");
    }

    #[test]
    fn pinned_gauge_independent() {
        let s = StoreStats::new();
        s.add_pinned_bytes(64);
        s.sub_pinned_bytes(32);
        let snap = s.snapshot();
        assert_eq!(snap.pinned_bytes, 32);
        assert_eq!(snap.max_pinned_bytes, 64);
        assert_eq!(snap.live_bytes, 0);
    }

    #[test]
    fn lgc_pause_tracks_total_and_max() {
        let s = StoreStats::new();
        s.on_lgc_pause(100);
        s.on_lgc_pause(700);
        s.on_lgc_pause(50);
        let snap = s.snapshot();
        assert_eq!(snap.lgc_pause_ns_total, 850);
        assert_eq!(snap.lgc_pause_ns_max, 700);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let s = StoreStats::new();
        s.on_alloc(100);
        s.on_lgc_pause(500);
        let t0 = s.snapshot();
        s.on_alloc(60);
        s.on_pin(8);
        let t1 = s.snapshot();
        let d = t1.delta(&t0);
        assert_eq!(d.allocs, 1);
        assert_eq!(d.alloc_bytes, 60);
        assert_eq!(d.pins, 1);
        assert_eq!(d.lgc_pause_ns_total, 0);
        // Gauges keep the later snapshot's value.
        assert_eq!(d.live_bytes, t1.live_bytes);
        assert_eq!(d.max_live_bytes, t1.max_live_bytes);
        assert_eq!(d.pinned_bytes, 8);
        assert_eq!(d.lgc_pause_ns_max, 500);
        // Skewed inputs saturate instead of underflowing.
        assert_eq!(t0.delta(&t1).allocs, 0);
    }

    #[test]
    fn entangled_accesses_sums() {
        let snap = StatsSnapshot {
            entangled_reads: 3,
            entangled_writes: 4,
            ..Default::default()
        };
        assert_eq!(snap.entangled_accesses(), 7);
    }
}
