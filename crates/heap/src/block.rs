//! Size-class blocks: raw word-addressed allocation pages with
//! bump-pointer cursors, Immix-style line marks, and side-metadata
//! bitmaps for the GC bits that used to live in object headers.
//!
//! A block is a fixed run of atomic 64-bit words. Objects are laid out
//! **inline**: `[header][fwd][field 0]…[field n-1]`, addressed by their
//! header's word offset — an [`crate::ObjRef`] is a `(block id, word
//! offset)` pair. Allocation is a single `fetch_add` on the bump cursor
//! followed by plain word stores; there is no per-object `OnceLock`, no
//! boxed `Object`, no `Vec`.
//!
//! ## Publication
//!
//! A reservation is invisible until published: the allocator writes the
//! payload words, then sets the object's bit in the `obj_start` bitmap
//! with release ordering. Readers (`try_get`, the `objects()` walker,
//! both collectors) only ever interpret words beneath a set `obj_start`
//! bit, acquired-loaded — a torn or half-initialized reservation cannot
//! be observed. This bitmap is the publication point the old slot
//! array's `OnceLock` used to provide, at the cost of one `fetch_or`
//! per allocation instead of a per-slot lock word.
//!
//! ## Side metadata
//!
//! Three more bitmaps (one bit per word, indexed by an object's header
//! offset) carry the GC state that moved out of the header:
//!
//! * `mark` — the concurrent collector's per-cycle mark. Sound outside
//!   the header CAS because marks are only read for reclamation *after*
//!   the mark-termination handshake, when no marker is running and the
//!   bits are stable (see `mpl-gc`'s phase ordering).
//! * `suspect` — sticky entanglement-candidate bit (received a
//!   down-pointer write). Set-only for an object's lifetime; the LGC
//!   re-establishes it on the evacuated copy.
//! * `slow` — the barrier fast tier's single-load classifier:
//!   `suspect ∪ pinned`, maintained conservatively (set before a pin
//!   CAS, re-derived from `suspect` after an unpin). A spurious slow
//!   bit only costs a slow-tier trip; a missing one is impossible by
//!   the update order.
//!
//! Line marks divide the block into [`LINE_WORDS`]-word lines; the
//! marker paints every line an object spans, so a sweep can free a
//! block whose line map is clean wholesale and account reclaimed lines
//! without walking objects.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::header::{Header, ObjKind};
use crate::object::{Object, OBJECT_OVERHEAD_BYTES};
use crate::sft::SftTable;
use crate::value::{ObjRef, Word};

/// Default block payload size in words (4 KiB).
pub const DEFAULT_BLOCK_WORDS: usize = 512;

/// Words per line (128 bytes): the granularity of sweep accounting.
pub const LINE_WORDS: usize = 16;

/// Inline words an object occupies beyond its fields (header + fwd).
pub const OBJECT_HEADER_WORDS: usize = 2;

/// Number of segregated size classes. Classes 0..N-1 hold objects of at
/// most `SIZE_CLASS_WORDS[c]` total words; the last class is the
/// overflow class for anything larger (objects bigger than a whole
/// block get a dedicated block).
pub const NUM_SIZE_CLASSES: usize = 4;

/// Upper bounds (inclusive, in total words) of the non-overflow classes.
pub const SIZE_CLASS_WORDS: [usize; NUM_SIZE_CLASSES - 1] = [4, 8, 16];

/// The size class for an object of `nwords` total inline words.
pub fn size_class(nwords: usize) -> usize {
    SIZE_CLASS_WORDS
        .iter()
        .position(|&cap| nwords <= cap)
        .unwrap_or(NUM_SIZE_CLASSES - 1)
}

/// One bit per word offset, atomically updated.
#[derive(Debug)]
struct Bitmap {
    words: Box<[AtomicU64]>,
}

impl Bitmap {
    fn new(bits: usize) -> Bitmap {
        Bitmap {
            words: (0..bits.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Sets bit `i`; true if it was previously clear.
    #[inline]
    fn set(&self, i: u32) -> bool {
        let mask = 1u64 << (i % 64);
        self.words[(i / 64) as usize].fetch_or(mask, Ordering::AcqRel) & mask == 0
    }

    #[inline]
    fn clear(&self, i: u32) {
        let mask = 1u64 << (i % 64);
        self.words[(i / 64) as usize].fetch_and(!mask, Ordering::AcqRel);
    }

    #[inline]
    fn get(&self, i: u32) -> bool {
        let mask = 1u64 << (i % 64);
        self.words[(i / 64) as usize].load(Ordering::Acquire) & mask != 0
    }

    #[inline]
    fn word(&self, w: usize) -> u64 {
        self.words[w].load(Ordering::Acquire)
    }

    fn clear_all(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Release);
        }
    }

    /// Number of set bits (64 offsets per load; no per-object walk).
    fn count(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }
}

/// A size-class allocation block: raw words, a bump cursor, and the
/// side metadata described in the module docs.
#[derive(Debug)]
pub struct Block {
    id: u32,
    size_class: u8,
    /// Owner heap id. Written at allocation; read by barriers and
    /// collectors. NOT canonicalized at merges (see `HeapTable::find`).
    owner: AtomicU32,
    /// Retained by a local collection: swept by the concurrent collector.
    entangled: AtomicBool,
    /// Bump cursor: next free word. May overshoot `capacity` (then the
    /// block is simply full).
    cursor: AtomicU32,
    /// Logical live bytes (allocation sizes minus swept objects).
    live_bytes: AtomicUsize,
    /// Number of currently pinned objects in this block.
    pinned_count: AtomicU32,
    /// Number of forwarding words installed in this block (never
    /// decremented): lets reclaim skip the chain-compression walk on
    /// blocks that never forwarded anything.
    forwarded_count: AtomicU32,
    words: Box<[AtomicU64]>,
    /// Publication bitmap: bit set at an object's header offset once the
    /// object is fully initialized.
    obj_start: Bitmap,
    /// Concurrent-collector mark bits (per cycle).
    mark: Bitmap,
    /// Sticky entanglement-candidate bits.
    suspect: Bitmap,
    /// Barrier fast-tier classifier: `suspect ∪ pinned`, conservative.
    slow: Bitmap,
    /// One mark byte per line, painted during concurrent marking.
    line_marks: Box<[AtomicU8]>,
    /// Write-through classification table (see [`SftTable`]).
    sft: Arc<SftTable>,
}

impl Block {
    /// Creates an empty block of `capacity` words owned by heap `owner`
    /// and publishes it in the SFT.
    pub fn new(
        id: u32,
        owner: u32,
        capacity: usize,
        size_class: usize,
        sft: Arc<SftTable>,
    ) -> Block {
        let capacity = capacity.max(OBJECT_HEADER_WORDS);
        sft.publish(id, owner, false);
        Block {
            id,
            size_class: size_class as u8,
            owner: AtomicU32::new(owner),
            entangled: AtomicBool::new(false),
            cursor: AtomicU32::new(0),
            live_bytes: AtomicUsize::new(0),
            pinned_count: AtomicU32::new(0),
            forwarded_count: AtomicU32::new(0),
            words: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            obj_start: Bitmap::new(capacity),
            mark: Bitmap::new(capacity),
            suspect: Bitmap::new(capacity),
            slow: Bitmap::new(capacity),
            line_marks: (0..capacity.div_ceil(LINE_WORDS))
                .map(|_| AtomicU8::new(0))
                .collect(),
            sft,
        }
    }

    /// The block's registry id.
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The size class this block serves.
    #[inline]
    pub fn size_class(&self) -> usize {
        self.size_class as usize
    }

    /// The owning heap id (uncanonicalized).
    #[inline]
    pub fn owner(&self) -> u32 {
        self.owner.load(Ordering::Acquire)
    }

    /// Re-homes the block to a different heap (merge bookkeeping),
    /// writing the SFT entry through.
    pub fn set_owner(&self, heap: u32) {
        self.owner.store(heap, Ordering::Release);
        self.sft
            .publish(self.id, heap, self.entangled.load(Ordering::Acquire));
    }

    /// Whether the block was retained into the entangled space.
    #[inline]
    pub fn is_entangled(&self) -> bool {
        self.entangled.load(Ordering::Acquire)
    }

    /// Flags the block as entangled (retained; swept by the CGC),
    /// writing the SFT entry through.
    pub fn set_entangled(&self, v: bool) {
        self.entangled.store(v, Ordering::Release);
        self.sft.publish(self.id, self.owner(), v);
    }

    /// Called by the registry when the block is freed: retracts the SFT
    /// entry so stale classifications fail closed.
    pub(crate) fn on_free(&self) {
        self.sft.retract(self.id);
    }

    /// Capacity in words.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Words allocated so far (clamped to capacity).
    #[inline]
    pub fn allocated(&self) -> usize {
        (self.cursor.load(Ordering::Acquire) as usize).min(self.capacity())
    }

    /// True once the bump cursor reached (or overshot) capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.cursor.load(Ordering::Acquire) as usize >= self.capacity()
    }

    // ---- allocation -----------------------------------------------------

    /// Reserves `nwords` contiguous words, returning the starting offset.
    /// The reservation is private (invisible to walkers) until
    /// [`Block::publish`] sets the `obj_start` bit.
    #[inline]
    pub fn try_reserve(&self, nwords: usize) -> Option<u32> {
        let n = u32::try_from(nwords).ok()?;
        let start = self.cursor.fetch_add(n, Ordering::AcqRel);
        let end = start.checked_add(n)?;
        if end as usize > self.capacity() {
            // Overshot: leave the cursor saturated; the block is full.
            return None;
        }
        Some(start)
    }

    /// Writes one payload word of a reservation (pre-publication; plain
    /// ordering, the publish fence covers it).
    #[inline]
    pub fn init_word(&self, off: u32, bits: u64) {
        self.words[off as usize].store(bits, Ordering::Relaxed);
    }

    /// Publishes a reserved object: installs the header and flips the
    /// `obj_start` bit with release ordering. All field words must have
    /// been written. Accounts the allocation into `live_bytes`.
    #[inline]
    pub fn publish(&self, off: u32, kind: ObjKind, len: usize) {
        self.words[off as usize].store(Header::new(kind, len).bits(), Ordering::Release);
        self.obj_start.set(off);
        self.live_bytes
            .fetch_add(OBJECT_OVERHEAD_BYTES + 8 * len, Ordering::Relaxed);
    }

    /// Bump-allocates a fully formed object: reserve, write `fwd = 0`
    /// and the encoded fields, publish. Returns the object's reference,
    /// or `None` if the block is full.
    #[inline]
    pub fn try_alloc(&self, kind: ObjKind, fields: &[Word]) -> Option<ObjRef> {
        let off = self.try_reserve(OBJECT_HEADER_WORDS + fields.len())?;
        self.init_word(off + 1, 0);
        for (i, w) in fields.iter().enumerate() {
            self.init_word(off + 2 + i as u32, w.bits());
        }
        self.publish(off, kind, fields.len());
        Some(ObjRef::new(self.id, off))
    }

    // ---- object access --------------------------------------------------

    /// The raw atomic word at `off` (collector internals).
    #[inline]
    pub(crate) fn word(&self, off: u32) -> &AtomicU64 {
        &self.words[off as usize]
    }

    /// Returns a view of the published object whose header sits at
    /// `off`, or `None` for never-published or out-of-range offsets.
    #[inline]
    pub fn try_get(&self, off: u32) -> Option<Object<'_>> {
        if (off as usize) < self.capacity() && self.obj_start.get(off) {
            Some(Object::view(self, off))
        } else {
            None
        }
    }

    /// Returns a view of the published object at `off`.
    ///
    /// # Panics
    ///
    /// Panics on an unpublished offset — a dangling reference.
    #[inline]
    pub fn get(&self, off: u32) -> Object<'_> {
        self.try_get(off)
            .unwrap_or_else(|| panic!("dangling reference b{}w{}", self.id, off))
    }

    /// Iterates `(offset, object)` over every published object, in
    /// address order, by scanning the `obj_start` bitmap.
    pub fn objects(&self) -> impl Iterator<Item = (u32, Object<'_>)> + '_ {
        let nwords = self.obj_start.words.len();
        (0..nwords).flat_map(move |w| {
            let mut bits = self.obj_start.word(w);
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                let off = (w as u32) * 64 + b;
                Some((off, Object::view(self, off)))
            })
        })
    }

    /// Offsets of published objects that are **unmarked** this cycle:
    /// the sweep's kill candidates, computed 64 objects at a time from
    /// `obj_start & !mark` without touching any object header.
    pub fn unmarked_offsets(&self) -> impl Iterator<Item = u32> + '_ {
        let nwords = self.obj_start.words.len();
        (0..nwords).flat_map(move |w| {
            let mut bits = self.obj_start.word(w) & !self.mark.word(w);
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some((w as u32) * 64 + b)
            })
        })
    }

    // ---- accounting -----------------------------------------------------

    /// Number of published objects (census: popcount of `obj_start`).
    pub fn object_count(&self) -> usize {
        self.obj_start.count()
    }

    /// Number of objects carrying this cycle's concurrent mark bit.
    pub fn marked_count(&self) -> usize {
        self.mark.count()
    }

    /// Number of sticky entanglement suspects in this block.
    pub fn suspect_count(&self) -> usize {
        self.suspect.count()
    }

    /// Logical live bytes currently attributed to this block.
    #[inline]
    pub fn live_bytes(&self) -> usize {
        self.live_bytes.load(Ordering::Acquire)
    }

    /// Subtracts reclaimed bytes (saturating).
    pub fn sub_live_bytes(&self, bytes: usize) {
        let mut cur = self.live_bytes.load(Ordering::Acquire);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.live_bytes.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of currently pinned objects.
    #[inline]
    pub fn pinned_count(&self) -> u32 {
        self.pinned_count.load(Ordering::Acquire)
    }

    /// Adjusts the pinned-object count.
    pub fn add_pinned(&self, delta: i32) {
        if delta >= 0 {
            self.pinned_count.fetch_add(delta as u32, Ordering::AcqRel);
        } else {
            self.pinned_count
                .fetch_sub(delta.unsigned_abs(), Ordering::AcqRel);
        }
    }

    /// Number of forwarding words ever installed in this block.
    #[inline]
    pub fn forwarded_count(&self) -> u32 {
        self.forwarded_count.load(Ordering::Acquire)
    }

    pub(crate) fn note_forwarded(&self) {
        self.forwarded_count.fetch_add(1, Ordering::AcqRel);
    }

    // ---- side-metadata GC bits ------------------------------------------

    /// Sets the concurrent mark bit for the object at `off` and paints
    /// its lines; true if this call marked it first.
    #[inline]
    pub(crate) fn try_set_mark(&self, off: u32, nwords: usize) -> bool {
        let newly = self.mark.set(off);
        if newly {
            self.mark_lines(off, nwords);
        }
        newly
    }

    /// True if the object at `off` carries the concurrent mark bit.
    #[inline]
    pub fn is_marked(&self, off: u32) -> bool {
        self.mark.get(off)
    }

    #[inline]
    pub(crate) fn clear_mark(&self, off: u32) {
        self.mark.clear(off);
    }

    /// Clears the whole mark bitmap and the line map (cycle epilogue).
    pub fn clear_all_marks(&self) {
        self.mark.clear_all();
        for l in self.line_marks.iter() {
            l.store(0, Ordering::Release);
        }
    }

    /// Marks the object at `off` as an entanglement suspect (it also
    /// joins the barrier slow set). Used by the store's allocation paths
    /// and by the local collector's to-space when copying suspects.
    #[inline]
    pub fn set_suspect(&self, off: u32) {
        // Order: suspect first, then slow — `clear_slow_unless_suspect`
        // rechecks suspect after clearing, so a racing unpin can never
        // strand a suspect object outside the slow set.
        self.suspect.set(off);
        self.slow.set(off);
    }

    #[inline]
    pub(crate) fn is_suspect(&self, off: u32) -> bool {
        self.suspect.get(off)
    }

    /// The barrier fast tier's one-load classification: true if the
    /// object needs the slow path (suspect or possibly pinned).
    #[inline]
    pub(crate) fn is_slow(&self, off: u32) -> bool {
        self.slow.get(off)
    }

    /// Flags the object slow *before* a pin attempt (conservative: set
    /// even if the pin CAS then fails — a stray slow bit is harmless).
    #[inline]
    pub(crate) fn set_slow(&self, off: u32) {
        self.slow.set(off);
    }

    /// Clears the slow bit after an unpin, unless the sticky suspect
    /// bit keeps the object in the slow set.
    #[inline]
    pub(crate) fn clear_slow_unless_suspect(&self, off: u32) {
        self.slow.clear(off);
        if self.suspect.get(off) {
            self.slow.set(off);
        }
    }

    // ---- line map -------------------------------------------------------

    /// Total lines in this block.
    #[inline]
    pub fn line_count(&self) -> usize {
        self.line_marks.len()
    }

    /// Lines overlapping the allocated (bumped) region.
    #[inline]
    pub fn lines_in_use(&self) -> usize {
        self.allocated().div_ceil(LINE_WORDS)
    }

    /// Paints every line the object at `off` spans.
    #[inline]
    pub(crate) fn mark_lines(&self, off: u32, nwords: usize) {
        let first = off as usize / LINE_WORDS;
        let last = (off as usize + nwords.max(1) - 1) / LINE_WORDS;
        for l in first..=last.min(self.line_marks.len() - 1) {
            self.line_marks[l].store(1, Ordering::Release);
        }
    }

    /// Number of painted lines this cycle.
    pub fn marked_lines(&self) -> usize {
        self.line_marks
            .iter()
            .filter(|l| l.load(Ordering::Acquire) != 0)
            .count()
    }

    /// True when no line is painted: the sweep may free the block
    /// wholesale (no marked survivor can live in it).
    pub fn line_map_clean(&self) -> bool {
        self.line_marks
            .iter()
            .all(|l| l.load(Ordering::Acquire) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sft() -> Arc<SftTable> {
        Arc::new(SftTable::new())
    }

    #[test]
    fn bump_allocates_inline_objects() {
        let b = Block::new(0, 7, 64, 0, sft());
        let r1 = b
            .try_alloc(ObjKind::Tuple, &[Word::encode(Value::Int(1))])
            .unwrap();
        let r2 = b
            .try_alloc(
                ObjKind::Tuple,
                &[Word::encode(Value::Int(2)), Word::encode(Value::Int(3))],
            )
            .unwrap();
        assert_eq!(r1.word(), 0);
        assert_eq!(r2.word(), 3, "3-word object bumps the cursor by 3");
        let o1 = b.get(r1.word());
        assert_eq!(o1.len(), 1);
        assert_eq!(o1.field(0), Value::Int(1));
        let o2 = b.get(r2.word());
        assert_eq!(o2.field(1), Value::Int(3));
        assert_eq!(b.allocated(), 7);
        assert_eq!(b.live_bytes(), 2 * OBJECT_OVERHEAD_BYTES + 8 * 3);
    }

    #[test]
    fn overflow_returns_none_and_fills() {
        let b = Block::new(0, 0, 8, 0, sft());
        assert!(b.try_alloc(ObjKind::Tuple, &[Word::UNIT; 2]).is_some());
        assert!(
            b.try_alloc(ObjKind::Tuple, &[Word::UNIT; 4]).is_none(),
            "6 words do not fit in the 4 remaining"
        );
        assert!(b.is_full(), "an overshot cursor leaves the block full");
    }

    #[test]
    fn unpublished_offsets_are_invisible() {
        let b = Block::new(0, 0, 32, 0, sft());
        let off = b.try_reserve(3).unwrap();
        assert!(b.try_get(off).is_none(), "reserved but unpublished");
        assert_eq!(b.objects().count(), 0);
        b.init_word(off + 1, 0);
        b.init_word(off + 2, Word::encode(Value::Int(9)).bits());
        b.publish(off, ObjKind::Ref, 1);
        assert_eq!(b.objects().count(), 1);
        assert_eq!(b.get(off).field(0), Value::Int(9));
    }

    #[test]
    fn dangling_get_panics() {
        let b = Block::new(3, 0, 16, 0, sft());
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.get(5)));
        assert!(res.is_err());
    }

    #[test]
    fn mark_bitmap_and_lines() {
        let b = Block::new(0, 0, 64, 0, sft());
        let r = b.try_alloc(ObjKind::Tuple, &[Word::UNIT]).unwrap();
        assert!(!b.is_marked(r.word()));
        assert!(b.line_map_clean());
        assert!(b.try_set_mark(r.word(), 3));
        assert!(!b.try_set_mark(r.word(), 3), "second mark is not new");
        assert!(b.is_marked(r.word()));
        assert_eq!(b.marked_lines(), 1);
        assert_eq!(b.unmarked_offsets().count(), 0);
        b.clear_all_marks();
        assert!(b.line_map_clean());
        assert_eq!(b.unmarked_offsets().count(), 1);
    }

    #[test]
    fn suspect_and_slow_bits() {
        let b = Block::new(0, 0, 32, 0, sft());
        let r = b.try_alloc(ObjKind::Ref, &[Word::UNIT]).unwrap();
        let off = r.word();
        assert!(!b.is_slow(off));
        b.set_slow(off); // pin path
        assert!(b.is_slow(off));
        b.clear_slow_unless_suspect(off); // unpin, never suspected
        assert!(!b.is_slow(off));
        b.set_suspect(off);
        assert!(b.is_slow(off) && b.is_suspect(off));
        b.clear_slow_unless_suspect(off); // unpin of a suspect: stays slow
        assert!(b.is_slow(off), "suspect bit is sticky through unpins");
    }

    #[test]
    fn size_class_mapping() {
        assert_eq!(size_class(2), 0);
        assert_eq!(size_class(4), 0);
        assert_eq!(size_class(5), 1);
        assert_eq!(size_class(8), 1);
        assert_eq!(size_class(16), 2);
        assert_eq!(size_class(17), 3);
        assert_eq!(size_class(10_000), 3);
    }

    #[test]
    fn sft_write_through() {
        let t = sft();
        let b = Block::new(12, 5, 32, 0, Arc::clone(&t));
        assert_eq!(t.owner_of(12), Some(5));
        b.set_owner(9);
        assert_eq!(t.owner_of(12), Some(9));
        b.set_entangled(true);
        assert!(t.classify(12).unwrap().entangled);
        b.on_free();
        assert_eq!(t.classify(12), None);
    }

    #[test]
    fn live_bytes_saturating_sub() {
        let b = Block::new(0, 0, 32, 0, sft());
        b.try_alloc(ObjKind::Tuple, &[Word::UNIT]).unwrap();
        let lb = b.live_bytes();
        b.sub_live_bytes(lb + 100);
        assert_eq!(b.live_bytes(), 0);
    }
}
