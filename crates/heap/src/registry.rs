//! The global chunk registry: an append-only table mapping chunk ids to
//! live chunks.
//!
//! Chunk ids are monotonically increasing and never reused, so a freed slot
//! (`None`) unambiguously means the chunk was reclaimed; touching it through
//! a stale `ObjRef` panics loudly, which turns use-after-free bugs into
//! immediate test failures.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::chunk::Chunk;

/// Append-only table of all chunks ever allocated.
#[derive(Debug, Default)]
pub struct ChunkRegistry {
    chunks: RwLock<Vec<Option<Arc<Chunk>>>>,
}

impl ChunkRegistry {
    /// Creates an empty registry.
    pub fn new() -> ChunkRegistry {
        ChunkRegistry::default()
    }

    /// Allocates a fresh chunk id and registers the chunk built by `make`.
    pub fn register(&self, make: impl FnOnce(u32) -> Chunk) -> Arc<Chunk> {
        let mut table = self.chunks.write();
        let id = u32::try_from(table.len()).expect("chunk id overflow");
        let chunk = Arc::new(make(id));
        table.push(Some(Arc::clone(&chunk)));
        chunk
    }

    /// Returns the chunk with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or the chunk has been freed (a dangling
    /// reference).
    pub fn get(&self, id: u32) -> Arc<Chunk> {
        self.try_get(id)
            .unwrap_or_else(|| panic!("access to freed or unknown chunk {id}"))
    }

    /// Returns the chunk with the given id, or `None` if freed/unknown.
    pub fn try_get(&self, id: u32) -> Option<Arc<Chunk>> {
        self.chunks.read().get(id as usize).cloned().flatten()
    }

    /// Frees a chunk, dropping the registry's reference. Outstanding `Arc`s
    /// keep the memory alive until they are released; subsequent `get`
    /// calls panic.
    pub fn free(&self, id: u32) {
        let mut table = self.chunks.write();
        if let Some(slot) = table.get_mut(id as usize) {
            if let Some(chunk) = slot.take() {
                crate::events::emit(crate::events::EventKind::ChunkFree, id, 0, chunk.owner());
            }
        }
    }

    /// Number of ids ever issued (including freed chunks).
    pub fn issued(&self) -> usize {
        self.chunks.read().len()
    }

    /// Number of chunks currently live.
    pub fn live(&self) -> usize {
        self.chunks.read().iter().filter(|c| c.is_some()).count()
    }

    /// Total logical live bytes across all live chunks.
    pub fn total_live_bytes(&self) -> usize {
        self.chunks
            .read()
            .iter()
            .flatten()
            .map(|c| c.live_bytes())
            .sum()
    }

    /// Snapshot of all live chunks (for collector iteration).
    pub fn live_chunks(&self) -> Vec<Arc<Chunk>> {
        self.chunks.read().iter().flatten().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::ObjKind;
    use crate::object::Object;

    #[test]
    fn register_and_get() {
        let reg = ChunkRegistry::new();
        let c0 = reg.register(|id| Chunk::new(id, 0, 4));
        let c1 = reg.register(|id| Chunk::new(id, 0, 4));
        assert_eq!(c0.id(), 0);
        assert_eq!(c1.id(), 1);
        assert_eq!(reg.get(1).id(), 1);
        assert_eq!(reg.issued(), 2);
        assert_eq!(reg.live(), 2);
    }

    #[test]
    fn free_makes_access_panic() {
        let reg = ChunkRegistry::new();
        reg.register(|id| Chunk::new(id, 0, 4));
        reg.free(0);
        assert_eq!(reg.live(), 0);
        assert!(reg.try_get(0).is_none());
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reg.get(0)));
        assert!(res.is_err(), "freed chunk access must panic");
    }

    #[test]
    fn total_live_bytes_sums() {
        let reg = ChunkRegistry::new();
        let c = reg.register(|id| Chunk::new(id, 0, 4));
        c.try_alloc(Object::with_len(ObjKind::Tuple, 2)).unwrap();
        assert_eq!(reg.total_live_bytes(), c.live_bytes());
        assert!(reg.total_live_bytes() > 0);
    }

    #[test]
    fn live_chunks_snapshot() {
        let reg = ChunkRegistry::new();
        reg.register(|id| Chunk::new(id, 0, 4));
        reg.register(|id| Chunk::new(id, 1, 4));
        reg.free(0);
        let live = reg.live_chunks();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].id(), 1);
    }
}
