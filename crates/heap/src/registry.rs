//! The global block registry: an append-only table mapping block ids to
//! live size-class blocks.
//!
//! Block ids are monotonically increasing and never reused, so a freed slot
//! (`None`) unambiguously means the block was reclaimed; touching it through
//! a stale `ObjRef` panics loudly, which turns use-after-free bugs into
//! immediate test failures. Freeing a block also retracts its SFT entry, so
//! the barrier's side-metadata classification fails closed on stale ids.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::block::Block;
use crate::stats::StoreStats;

/// Append-only table of all blocks ever allocated.
#[derive(Debug)]
pub struct BlockRegistry {
    blocks: RwLock<Vec<Option<Arc<Block>>>>,
    stats: Arc<StoreStats>,
}

impl Default for BlockRegistry {
    fn default() -> Self {
        BlockRegistry::new(Arc::new(StoreStats::new()))
    }
}

impl BlockRegistry {
    /// Creates an empty registry reporting block churn into `stats`.
    pub fn new(stats: Arc<StoreStats>) -> BlockRegistry {
        BlockRegistry {
            blocks: RwLock::new(Vec::new()),
            stats,
        }
    }

    /// Allocates a fresh block id and registers the block built by `make`.
    pub fn register(&self, make: impl FnOnce(u32) -> Block) -> Arc<Block> {
        let mut table = self.blocks.write();
        let id = u32::try_from(table.len()).expect("block id overflow");
        let block = Arc::new(make(id));
        table.push(Some(Arc::clone(&block)));
        self.stats.on_block_alloc();
        block
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or the block has been freed (a dangling
    /// reference).
    pub fn get(&self, id: u32) -> Arc<Block> {
        self.try_get(id)
            .unwrap_or_else(|| panic!("access to freed or unknown block {id}"))
    }

    /// Returns the block with the given id, or `None` if freed/unknown.
    pub fn try_get(&self, id: u32) -> Option<Arc<Block>> {
        self.blocks.read().get(id as usize).cloned().flatten()
    }

    /// Frees a block, dropping the registry's reference and retracting
    /// its SFT entry. Outstanding `Arc`s keep the memory alive until they
    /// are released; subsequent `get` calls panic.
    pub fn free(&self, id: u32) {
        let mut table = self.blocks.write();
        if let Some(slot) = table.get_mut(id as usize) {
            if let Some(block) = slot.take() {
                block.on_free();
                self.stats.on_block_free();
                crate::events::emit(crate::events::EventKind::BlockFree, id, 0, block.owner());
            }
        }
    }

    /// Number of ids ever issued (including freed blocks).
    pub fn issued(&self) -> usize {
        self.blocks.read().len()
    }

    /// Number of blocks currently live.
    pub fn live(&self) -> usize {
        self.blocks.read().iter().filter(|c| c.is_some()).count()
    }

    /// Total logical live bytes across all live blocks.
    pub fn total_live_bytes(&self) -> usize {
        self.blocks
            .read()
            .iter()
            .flatten()
            .map(|b| b.live_bytes())
            .sum()
    }

    /// Snapshot of all live blocks (for collector iteration).
    pub fn live_blocks(&self) -> Vec<Arc<Block>> {
        self.blocks.read().iter().flatten().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::ObjKind;
    use crate::sft::SftTable;
    use crate::value::Word;

    fn registry() -> (BlockRegistry, Arc<SftTable>, Arc<StoreStats>) {
        let stats = Arc::new(StoreStats::new());
        (
            BlockRegistry::new(Arc::clone(&stats)),
            Arc::new(SftTable::new()),
            stats,
        )
    }

    #[test]
    fn register_and_get() {
        let (reg, sft, stats) = registry();
        let b0 = reg.register(|id| Block::new(id, 0, 16, 0, Arc::clone(&sft)));
        let b1 = reg.register(|id| Block::new(id, 0, 16, 0, Arc::clone(&sft)));
        assert_eq!(b0.id(), 0);
        assert_eq!(b1.id(), 1);
        assert_eq!(reg.get(1).id(), 1);
        assert_eq!(reg.issued(), 2);
        assert_eq!(reg.live(), 2);
        assert_eq!(stats.snapshot().blocks_allocated, 2);
    }

    #[test]
    fn free_makes_access_panic_and_retracts_sft() {
        let (reg, sft, stats) = registry();
        reg.register(|id| Block::new(id, 0, 16, 0, Arc::clone(&sft)));
        assert!(sft.classify(0).is_some());
        reg.free(0);
        assert_eq!(reg.live(), 0);
        assert!(reg.try_get(0).is_none());
        assert!(sft.classify(0).is_none(), "freed block leaves the SFT");
        assert_eq!(stats.snapshot().blocks_freed, 1);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reg.get(0)));
        assert!(res.is_err(), "freed block access must panic");
    }

    #[test]
    fn total_live_bytes_sums() {
        let (reg, sft, _) = registry();
        let b = reg.register(|id| Block::new(id, 0, 16, 0, Arc::clone(&sft)));
        b.try_alloc(ObjKind::Tuple, &[Word::UNIT; 2]).unwrap();
        assert_eq!(reg.total_live_bytes(), b.live_bytes());
        assert!(reg.total_live_bytes() > 0);
    }

    #[test]
    fn live_blocks_snapshot() {
        let (reg, sft, _) = registry();
        reg.register(|id| Block::new(id, 0, 16, 0, Arc::clone(&sft)));
        reg.register(|id| Block::new(id, 1, 16, 0, Arc::clone(&sft)));
        reg.free(0);
        let live = reg.live_blocks();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].id(), 1);
    }
}
