//! The heap hierarchy: one heap per fork-join task, merged at joins.
//!
//! The tree of heaps mirrors the dynamic fork-join task tree. A fork gives
//! the two subtasks fresh child heaps; a join merges both children into the
//! parent. Merges are O(1) in the object graph: no objects are touched —
//! the child's identity is *unioned* into the parent (a concurrent
//! union-find over heap ids), and its block, remembered-set, and
//! entangled-object lists are spliced onto the parent's.
//!
//! Disentanglement, remoteness, and entanglement levels are all phrased in
//! terms of this tree:
//!
//! * a task's *path* is the root-to-leaf list of canonical heap ids;
//! * an object is **local** to a task iff its (canonical) heap is on the
//!   task's path, and **remote** otherwise;
//! * the **entanglement level** of a remote access is the depth of the
//!   least common ancestor of the task's leaf heap and the object's heap.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::block::{Block, NUM_SIZE_CLASSES};
use crate::budget::TenantBudget;
use crate::value::ObjRef;

/// A remembered-set entry: `src.field` holds a down-pointer into the heap
/// owning the remembered set. The local collector uses these as roots and
/// repairs them after evacuation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RemsetEntry {
    /// The object containing the down-pointer (in a shallower heap).
    pub src: ObjRef,
    /// The field index within `src`.
    pub field: u32,
}

/// Per-heap bookkeeping.
#[derive(Debug)]
pub struct HeapInfo {
    id: u32,
    parent: u32,
    depth: u16,
    merged_into: AtomicU32,
    blocks: Mutex<Vec<u32>>,
    /// The current bump-allocation block of each size class.
    alloc_blocks: Mutex<[Option<Arc<Block>>; NUM_SIZE_CLASSES]>,
    remset: Mutex<Vec<RemsetEntry>>,
    /// Pinned objects homed here, bucketed by pin level so a join at
    /// depth `d` only touches entries with level `>= d` (entries whose
    /// pins could actually end there). Sealed at the join so racing
    /// registrations redirect to the parent (see
    /// [`HeapTable::register_entangled`]).
    entangled: Mutex<EntangledIndex>,
    /// The tenant budget this heap's live bytes are accounted against,
    /// if any. Set on a tenant's root heap and inherited by every child
    /// heap at fork; read only on cold paths (task setup, collections).
    budget: Mutex<Option<Arc<TenantBudget>>>,
}

/// The per-heap entangled-object index. `sealed_into` linearizes pin
/// registration against joins: once a join drains the index it seals it,
/// and concurrent registrations chase the seal to the surviving heap.
#[derive(Debug, Default)]
struct EntangledIndex {
    sealed_into: Option<u32>,
    buckets: Vec<Vec<ObjRef>>,
}

impl HeapInfo {
    /// This heap's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The heap's depth in the hierarchy (root = 0). Fixed at creation.
    pub fn depth(&self) -> u16 {
        self.depth
    }

    /// The raw id of the parent heap recorded at creation.
    pub fn parent(&self) -> u32 {
        self.parent
    }

    /// Ids of blocks currently attributed to this heap.
    pub fn block_ids(&self) -> Vec<u32> {
        self.blocks.lock().clone()
    }

    /// Appends a block id to this heap's block list.
    pub fn add_block(&self, id: u32) {
        self.blocks.lock().push(id);
    }

    /// Replaces the block list wholesale (used by the local collector after
    /// evacuation).
    pub fn set_blocks(&self, ids: Vec<u32>) {
        *self.blocks.lock() = ids;
    }

    /// The current bump-allocation block for a size class, if any.
    pub fn alloc_block(&self, class: usize) -> Option<Arc<Block>> {
        self.alloc_blocks.lock()[class].clone()
    }

    /// Installs a new bump-allocation block for a size class.
    pub fn set_alloc_block(&self, class: usize, b: Option<Arc<Block>>) {
        self.alloc_blocks.lock()[class] = b;
    }

    /// Drops every per-class allocation block (joins and collections).
    pub fn clear_alloc_blocks(&self) {
        *self.alloc_blocks.lock() = Default::default();
    }

    /// Records a down-pointer into this heap.
    pub fn remember(&self, entry: RemsetEntry) {
        self.remset.lock().push(entry);
    }

    /// Drains the remembered set (the local collector rebuilds it with the
    /// entries that remain valid).
    pub fn take_remset(&self) -> Vec<RemsetEntry> {
        std::mem::take(&mut self.remset.lock())
    }

    /// Restores remembered-set entries after a collection.
    pub fn extend_remset(&self, entries: impl IntoIterator<Item = RemsetEntry>) {
        self.remset.lock().extend(entries);
    }

    /// Current number of remembered entries.
    pub fn remset_len(&self) -> usize {
        self.remset.lock().len()
    }

    /// Registers a pinned (entangled) object homed in this heap, indexed
    /// by its pin level. Fails with the seal target if the index was
    /// sealed by a concurrent join — the caller must retry on that heap.
    pub fn try_add_entangled(&self, r: ObjRef, level: u16) -> Result<(), u32> {
        let mut index = self.entangled.lock();
        if let Some(into) = index.sealed_into {
            return Err(into);
        }
        let idx = level as usize;
        if index.buckets.len() <= idx {
            index.buckets.resize_with(idx + 1, Vec::new);
        }
        index.buckets[idx].push(r);
        Ok(())
    }

    /// Registers unconditionally (single-task contexts and tests). Chasing
    /// seals is [`HeapTable::register_entangled`]'s job.
    pub fn add_entangled(&self, r: ObjRef, level: u16) {
        self.try_add_entangled(r, level)
            .expect("add_entangled on a sealed index");
    }

    /// Drains every entangled-object entry (collections rebuild the index).
    pub fn take_entangled(&self) -> Vec<ObjRef> {
        let mut index = self.entangled.lock();
        let mut out = Vec::new();
        for b in index.buckets.iter_mut() {
            out.append(b);
        }
        out
    }

    /// Drains the whole index **and seals it**: subsequent registrations
    /// are redirected to `into`. Used exactly once, at the heap's join.
    pub fn drain_and_seal_entangled(&self, into: u32) -> Vec<ObjRef> {
        let mut index = self.entangled.lock();
        index.sealed_into = Some(into);
        let mut out = Vec::new();
        for b in index.buckets.iter_mut() {
            out.append(b);
        }
        out
    }

    /// Drains only the entries whose recorded level is `>= depth` — the
    /// candidates for unpinning at a join of that depth.
    pub fn take_entangled_at_or_below(&self, depth: u16) -> Vec<ObjRef> {
        let mut index = self.entangled.lock();
        let mut out = Vec::new();
        for b in index.buckets.iter_mut().skip(depth as usize) {
            out.append(b);
        }
        out
    }

    /// Restores entangled-object entries at level 0 (conservative: they
    /// will be revisited at every join until unpinned).
    pub fn extend_entangled(&self, entries: impl IntoIterator<Item = ObjRef>) {
        for r in entries {
            self.add_entangled(r, 0);
        }
    }

    /// Current number of entangled-object entries.
    pub fn entangled_len(&self) -> usize {
        self.entangled.lock().buckets.iter().map(|b| b.len()).sum()
    }

    /// The tenant budget this heap is accounted against, if any.
    pub fn budget(&self) -> Option<Arc<TenantBudget>> {
        self.budget.lock().clone()
    }

    /// Attaches (or clears) the tenant budget for this heap. Children
    /// created after this call inherit it; existing children are
    /// unaffected.
    pub fn set_budget(&self, budget: Option<Arc<TenantBudget>>) {
        *self.budget.lock() = budget;
    }
}

/// The table of all heaps, with union-find merging.
#[derive(Debug, Default)]
pub struct HeapTable {
    heaps: RwLock<Vec<Arc<HeapInfo>>>,
}

impl HeapTable {
    /// Creates an empty table.
    pub fn new() -> HeapTable {
        HeapTable::default()
    }

    fn push(&self, parent: u32, depth: u16, budget: Option<Arc<TenantBudget>>) -> u32 {
        let mut table = self.heaps.write();
        let id = u32::try_from(table.len()).expect("heap id overflow");
        table.push(Arc::new(HeapInfo {
            id,
            parent,
            depth,
            merged_into: AtomicU32::new(id),
            blocks: Mutex::new(Vec::new()),
            alloc_blocks: Mutex::new(Default::default()),
            remset: Mutex::new(Vec::new()),
            entangled: Mutex::new(EntangledIndex::default()),
            budget: Mutex::new(budget),
        }));
        id
    }

    /// Creates a root heap (depth 0, its own parent).
    pub fn new_root(&self) -> u32 {
        let id = { self.heaps.read().len() as u32 };
        self.push(id, 0, None)
    }

    /// Creates the two child heaps of a fork. Both children inherit the
    /// parent's tenant budget, so a whole tenant subtree is accounted
    /// against one limit.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not canonical (merged heaps cannot fork).
    pub fn fork(&self, parent: u32) -> (u32, u32) {
        assert_eq!(self.find(parent), parent, "fork from a merged heap");
        let parent_info = self.info(parent);
        let depth = parent_info.depth() + 1;
        let budget = parent_info.budget();
        let l = self.push(parent, depth, budget.clone());
        let r = self.push(parent, depth, budget);
        (l, r)
    }

    /// Returns the `HeapInfo` for a (raw or canonical) id.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn info(&self, id: u32) -> Arc<HeapInfo> {
        self.heaps
            .read()
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| panic!("unknown heap id {id}"))
    }

    /// Canonicalizes a heap id through completed merges, with path
    /// compression.
    pub fn find(&self, id: u32) -> u32 {
        let table = self.heaps.read();
        let mut cur = id;
        loop {
            let next = table[cur as usize].merged_into.load(Ordering::Acquire);
            if next == cur {
                break;
            }
            cur = next;
        }
        // Path compression: repoint every node on the chain at the root.
        let mut walk = id;
        while walk != cur {
            let info = &table[walk as usize];
            let next = info.merged_into.load(Ordering::Acquire);
            info.merged_into.store(cur, Ordering::Release);
            walk = next;
        }
        cur
    }

    /// Depth of the canonical heap for `id`.
    pub fn depth(&self, id: u32) -> u16 {
        let c = self.find(id);
        self.info(c).depth()
    }

    /// Canonicalizes `id` and returns its depth with a single table
    /// acquisition (the mutators' hot-path query).
    pub fn canonical_and_depth(&self, id: u32) -> (u32, u16) {
        let table = self.heaps.read();
        let mut cur = id;
        loop {
            let next = table[cur as usize].merged_into.load(Ordering::Acquire);
            if next == cur {
                break;
            }
            cur = next;
        }
        let mut walk = id;
        while walk != cur {
            let info = &table[walk as usize];
            let next = info.merged_into.load(Ordering::Acquire);
            info.merged_into.store(cur, Ordering::Release);
            walk = next;
        }
        (cur, table[cur as usize].depth)
    }

    /// Canonical parent of a canonical heap id.
    pub fn parent_of(&self, id: u32) -> u32 {
        let info = self.info(id);
        self.find(info.parent())
    }

    /// Registers a pinned object on the canonical heap for `heap`,
    /// chasing both union-find merges and entangled-index seals, so a
    /// registration racing a join always lands on a live index.
    pub fn register_entangled(&self, heap: u32, r: ObjRef, level: u16) {
        let mut cur = heap;
        loop {
            cur = self.find(cur);
            match self.info(cur).try_add_entangled(r, level) {
                Ok(()) => return,
                Err(into) => cur = into,
            }
        }
    }

    /// Canonicalizes `dst` and records a remembered-set entry on it with a
    /// single table acquisition (the write barrier's hot path).
    pub fn remember_canonical(&self, dst: u32, entry: RemsetEntry) {
        let table = self.heaps.read();
        let mut cur = dst;
        loop {
            let next = table[cur as usize].merged_into.load(Ordering::Acquire);
            if next == cur {
                break;
            }
            cur = next;
        }
        table[cur as usize].remset.lock().push(entry);
    }

    /// Canonicalizes `dst` and records a whole batch of remembered-set
    /// entries on it under a single table acquisition and a single
    /// remset lock — the publication path for mutator-private
    /// remembered-set buffers, which amortizes the per-entry
    /// synchronization the old central-mutex design paid on every
    /// down-pointer write.
    pub fn remember_canonical_batch(&self, dst: u32, entries: &[RemsetEntry]) {
        if entries.is_empty() {
            return;
        }
        let table = self.heaps.read();
        let mut cur = dst;
        loop {
            let next = table[cur as usize].merged_into.load(Ordering::Acquire);
            if next == cur {
                break;
            }
            cur = next;
        }
        table[cur as usize].remset.lock().extend_from_slice(entries);
    }

    /// Merges `child` into `parent`: unions the ids and splices the block
    /// list. Remembered-set and entangled-list handling is done by the
    /// caller (it needs object access for the unpin-at-join rule).
    ///
    /// # Panics
    ///
    /// Panics unless `child`'s canonical parent is `parent`.
    pub fn merge_child(&self, parent: u32, child: u32) {
        let parent = self.find(parent);
        let child = self.find(child);
        assert_eq!(
            self.parent_of(child),
            parent,
            "merge_child requires a direct parent-child pair"
        );
        let child_info = self.info(child);
        let parent_info = self.info(parent);
        // Splice block lists before publishing the union so a concurrent
        // observer never sees the child emptied but not yet unioned.
        let mut moved = child_info.blocks.lock();
        parent_info.blocks.lock().append(&mut moved);
        drop(moved);
        child_info.clear_alloc_blocks();
        child_info.merged_into.store(parent, Ordering::Release);
    }

    /// Number of heaps ever created.
    pub fn len(&self) -> usize {
        self.heaps.read().len()
    }

    /// True if no heap has been created.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `maybe_ancestor` is on the root-to-`id` path (inclusive).
    /// This walks parent links; hot paths use the task's cached path
    /// instead (`path[depth] == heap`).
    pub fn is_ancestor(&self, maybe_ancestor: u32, id: u32) -> bool {
        let anc = self.find(maybe_ancestor);
        let mut cur = self.find(id);
        loop {
            if cur == anc {
                return true;
            }
            let p = self.parent_of(cur);
            if p == cur {
                return false;
            }
            cur = p;
        }
    }

    /// Depth of the least common ancestor of two heaps.
    ///
    /// # Panics
    ///
    /// Panics if the heaps belong to disjoint forests.
    pub fn lca_of(&self, a: u32, b: u32) -> u16 {
        let table = self.heaps.read();
        let find = |start: u32| -> u32 {
            let mut c = start;
            loop {
                let n = table[c as usize].merged_into.load(Ordering::Acquire);
                if n == c {
                    return c;
                }
                c = n;
            }
        };
        let mut a = find(a);
        let mut b = find(b);
        loop {
            if a == b {
                return table[a as usize].depth;
            }
            let da = table[a as usize].depth;
            let db = table[b as usize].depth;
            if da >= db {
                let p = find(table[a as usize].parent);
                assert!(p != a || da > 0, "disjoint heap forests");
                if p == a && b != a {
                    // `a` is a root; climb `b` instead.
                    let pb = find(table[b as usize].parent);
                    assert_ne!(pb, b, "disjoint heap forests");
                    b = pb;
                } else {
                    a = p;
                }
            } else {
                let p = find(table[b as usize].parent);
                assert_ne!(p, b, "disjoint heap forests");
                b = p;
            }
        }
    }

    /// Fused hot-path query: canonicalizes `h`, determines whether it lies
    /// on `path`, and if not computes the LCA depth — all under a single
    /// table acquisition. Returns `(canonical, depth, lca_depth_if_remote)`.
    pub fn path_relation(&self, path: &[u32], h: u32) -> (u32, u16, Option<u16>) {
        let table = self.heaps.read();
        let find = |start: u32| -> u32 {
            let mut c = start;
            loop {
                let n = table[c as usize].merged_into.load(Ordering::Acquire);
                if n == c {
                    return c;
                }
                c = n;
            }
        };
        let canon = find(h);
        let depth = table[canon as usize].depth;
        // Path entries are canonical while the owning task runs.
        if (depth as usize) < path.len() && path[depth as usize] == canon {
            return (canon, depth, None);
        }
        let mut cur = canon;
        loop {
            let d = table[cur as usize].depth as usize;
            if d < path.len() && find(path[d]) == cur {
                return (canon, depth, Some(d as u16));
            }
            let p = find(table[cur as usize].parent);
            assert_ne!(p, cur, "no common ancestor: disjoint heap forests");
            cur = p;
        }
    }

    /// Like [`HeapTable::lca_depth`], but performs the entire walk under a
    /// single table acquisition — the read barrier's hot path.
    pub fn lca_depth_on_path(&self, path: &[u32], h: u32) -> u16 {
        let table = self.heaps.read();
        let find = |start: u32| -> u32 {
            let mut c = start;
            loop {
                let n = table[c as usize].merged_into.load(Ordering::Acquire);
                if n == c {
                    return c;
                }
                c = n;
            }
        };
        let mut cur = find(h);
        loop {
            let d = table[cur as usize].depth as usize;
            if d < path.len() && find(path[d]) == cur {
                return d as u16;
            }
            let p = find(table[cur as usize].parent);
            assert_ne!(p, cur, "no common ancestor: disjoint heap forests");
            cur = p;
        }
    }

    /// Depth of the least common ancestor of the heap `h` and the leaf of
    /// `path` (a root-to-leaf list of canonical heap ids).
    pub fn lca_depth(&self, path: &[u32], h: u32) -> u16 {
        let mut cur = self.find(h);
        loop {
            let d = self.info(cur).depth() as usize;
            if d < path.len() && self.find(path[d]) == cur {
                return d as u16;
            }
            let p = self.parent_of(cur);
            assert_ne!(p, cur, "no common ancestor: disjoint heap forests");
            cur = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_and_fork_depths() {
        let t = HeapTable::new();
        let root = t.new_root();
        assert_eq!(t.depth(root), 0);
        let (l, r) = t.fork(root);
        assert_eq!(t.depth(l), 1);
        assert_eq!(t.depth(r), 1);
        assert_eq!(t.parent_of(l), root);
        assert_eq!(t.parent_of(r), root);
        assert_ne!(l, r);
    }

    #[test]
    fn merge_unions_ids() {
        let t = HeapTable::new();
        let root = t.new_root();
        let (l, r) = t.fork(root);
        t.merge_child(root, l);
        t.merge_child(root, r);
        assert_eq!(t.find(l), root);
        assert_eq!(t.find(r), root);
        assert_eq!(t.depth(l), 0, "depth follows the canonical heap");
    }

    #[test]
    fn deep_merge_chain_compresses() {
        let t = HeapTable::new();
        let root = t.new_root();
        let mut leaf = root;
        let mut spine = vec![root];
        for _ in 0..10 {
            let (l, _r) = t.fork(leaf);
            spine.push(l);
            leaf = l;
        }
        for w in spine.windows(2).rev() {
            t.merge_child(w[0], w[1]);
        }
        assert_eq!(t.find(leaf), root);
        // After compression the chain is short; find again is O(1).
        assert_eq!(t.find(leaf), root);
    }

    #[test]
    fn ancestor_queries() {
        let t = HeapTable::new();
        let root = t.new_root();
        let (l, r) = t.fork(root);
        let (ll, _lr) = t.fork(l);
        assert!(t.is_ancestor(root, ll));
        assert!(t.is_ancestor(l, ll));
        assert!(!t.is_ancestor(r, ll));
        assert!(t.is_ancestor(ll, ll));
    }

    #[test]
    fn lca_depth_between_siblings() {
        let t = HeapTable::new();
        let root = t.new_root();
        let (l, r) = t.fork(root);
        let (ll, _) = t.fork(l);
        let path = vec![root, l, ll];
        assert_eq!(t.lca_depth(&path, r), 0, "sibling subtree meets at root");
        assert_eq!(t.lca_depth(&path, l), 1);
        assert_eq!(t.lca_depth(&path, ll), 2);
    }

    #[test]
    fn merge_splices_block_lists() {
        let t = HeapTable::new();
        let root = t.new_root();
        let (l, _r) = t.fork(root);
        t.info(root).add_block(0);
        t.info(l).add_block(1);
        t.info(l).add_block(2);
        t.merge_child(root, l);
        assert_eq!(t.info(root).block_ids(), vec![0, 1, 2]);
        assert!(t.info(l).block_ids().is_empty());
    }

    #[test]
    #[should_panic(expected = "direct parent-child")]
    fn merge_rejects_non_child() {
        let t = HeapTable::new();
        let root = t.new_root();
        let (l, _r) = t.fork(root);
        let (ll, _) = t.fork(l);
        t.merge_child(root, ll);
    }

    #[test]
    fn remset_and_entangled_lists() {
        let t = HeapTable::new();
        let root = t.new_root();
        let info = t.info(root);
        info.remember(RemsetEntry {
            src: ObjRef::new(0, 0),
            field: 1,
        });
        assert_eq!(info.remset_len(), 1);
        let drained = info.take_remset();
        assert_eq!(drained.len(), 1);
        assert_eq!(info.remset_len(), 0);
        info.extend_remset(drained);
        assert_eq!(info.remset_len(), 1);

        info.add_entangled(ObjRef::new(0, 1), 0);
        assert_eq!(info.entangled_len(), 1);
        assert_eq!(info.take_entangled().len(), 1);
    }

    #[test]
    fn fork_inherits_tenant_budget() {
        let t = HeapTable::new();
        let root = t.new_root();
        assert!(t.info(root).budget().is_none(), "roots start unbudgeted");
        let b = TenantBudget::new("tenant", 4096);
        t.info(root).set_budget(Some(b.clone()));
        let (l, r) = t.fork(root);
        let (ll, lr) = t.fork(l);
        for h in [l, r, ll, lr] {
            let got = t.info(h).budget().expect("child inherits budget");
            assert!(Arc::ptr_eq(&got, &b), "one shared budget per subtree");
        }
        // A different root stays unbudgeted.
        let other = t.new_root();
        assert!(t.info(other).budget().is_none());
    }
}
