//! Heap introspection: structured reports over the hierarchy for
//! debugging, examples, and operational visibility.

use std::fmt;

use crate::store::Store;

/// A per-heap snapshot.
#[derive(Clone, Debug)]
pub struct HeapReport {
    /// Canonical heap id.
    pub id: u32,
    /// Depth in the hierarchy.
    pub depth: u16,
    /// Canonical parent id (self for roots).
    pub parent: u32,
    /// Blocks currently attributed to the heap.
    pub blocks: usize,
    /// Logical live bytes across those blocks.
    pub live_bytes: usize,
    /// Pinned objects attributed to those blocks.
    pub pinned: u32,
    /// Remembered-set entries.
    pub remset: usize,
    /// Entangled-index entries.
    pub entangled_index: usize,
}

/// A whole-store snapshot: one report per *canonical* (unmerged) heap.
#[derive(Clone, Debug)]
pub struct StoreReport {
    /// Per-heap rows, ordered by id.
    pub heaps: Vec<HeapReport>,
    /// Blocks ever created.
    pub blocks_issued: usize,
    /// Blocks currently live.
    pub blocks_live: usize,
    /// Total logical live bytes.
    pub live_bytes: usize,
}

/// Takes a snapshot of the hierarchy.
pub fn report(store: &Store) -> StoreReport {
    let mut heaps = Vec::new();
    for id in 0..store.heaps().len() as u32 {
        if store.heaps().find(id) != id {
            continue; // merged away
        }
        let info = store.heaps().info(id);
        let block_ids = info.block_ids();
        let mut live = 0usize;
        let mut pinned = 0u32;
        for bid in &block_ids {
            if let Some(b) = store.blocks().try_get(*bid) {
                live += b.live_bytes();
                pinned += b.pinned_count();
            }
        }
        heaps.push(HeapReport {
            id,
            depth: info.depth(),
            parent: store.heaps().parent_of(id),
            blocks: block_ids.len(),
            live_bytes: live,
            pinned,
            remset: info.remset_len(),
            entangled_index: info.entangled_len(),
        });
    }
    StoreReport {
        heaps,
        blocks_issued: store.blocks().issued(),
        blocks_live: store.blocks().live(),
        live_bytes: store.blocks().total_live_bytes(),
    }
}

impl fmt::Display for StoreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "store: {} live blocks ({} issued), {} live bytes",
            self.blocks_live, self.blocks_issued, self.live_bytes
        )?;
        writeln!(
            f,
            "{:<6} {:<6} {:<7} {:<7} {:<10} {:<7} {:<7} {:<9}",
            "heap", "depth", "parent", "blocks", "live", "pinned", "remset", "entangled"
        )?;
        for h in &self.heaps {
            writeln!(
                f,
                "{:<6} {:<6} {:<7} {:<7} {:<10} {:<7} {:<7} {:<9}",
                h.id,
                h.depth,
                h.parent,
                h.blocks,
                h.live_bytes,
                h.pinned,
                h.remset,
                h.entangled_index
            )?;
        }
        Ok(())
    }
}

/// Renders the hierarchy snapshot as a Graphviz `dot` digraph: one node
/// per canonical heap (labelled with depth, live bytes, pins), one edge
/// per parent link. Paste into `dot -Tsvg` to visualize a run.
pub fn to_dot(rep: &StoreReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "digraph heaps {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    for h in &rep.heaps {
        let fill = if h.pinned > 0 {
            ", style=filled, fillcolor=\"#ffd9d9\""
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  h{} [label=\"heap {}\\nd={} live={}B\\npins={} ent={}\"{}];",
            h.id, h.id, h.depth, h.live_bytes, h.pinned, h.entangled_index, fill
        );
    }
    for h in &rep.heaps {
        if h.parent != h.id {
            let _ = writeln!(out, "  h{} -> h{};", h.parent, h.id);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::ObjKind;
    use crate::store::StoreConfig;
    use crate::value::Value;

    #[test]
    fn report_tracks_hierarchy_shape() {
        let s = Store::new(StoreConfig {
            block_words: 24,
            ..Default::default()
        });
        let root = s.new_root_heap();
        let (l, r) = s.fork_heaps(root);
        s.alloc_values(root, ObjKind::Tuple, &[Value::Int(1)]);
        let x = s.alloc_values(l, ObjKind::Ref, &[Value::Int(2)]);
        s.pin(x, 0);

        let rep = report(&s);
        assert_eq!(rep.heaps.len(), 3);
        let lrep = rep.heaps.iter().find(|h| h.id == l).unwrap();
        assert_eq!(lrep.depth, 1);
        assert_eq!(lrep.parent, root);
        assert_eq!(lrep.pinned, 1);
        assert_eq!(lrep.entangled_index, 1);
        assert!(rep.live_bytes > 0);

        // Joins collapse rows.
        s.join(root, l, r);
        let rep = report(&s);
        assert_eq!(rep.heaps.len(), 1, "only the root remains canonical");
        let display = rep.to_string();
        assert!(display.contains("live blocks"));
    }

    #[test]
    fn dot_export_shape() {
        let s = Store::new(StoreConfig {
            block_words: 24,
            ..Default::default()
        });
        let root = s.new_root_heap();
        let (l, r) = s.fork_heaps(root);
        let x = s.alloc_values(l, ObjKind::Ref, &[Value::Int(2)]);
        s.pin(x, 0);
        let dot = to_dot(&report(&s));
        assert!(dot.starts_with("digraph heaps {"));
        assert!(dot.contains(&format!("h{root} -> h{l};")));
        assert!(dot.contains(&format!("h{root} -> h{r};")));
        assert!(dot.contains("fillcolor"), "pinned heaps are highlighted");
        assert!(dot.ends_with("}\n"));
    }
}
