//! The space-function table (SFT): a lock-free block → space map the
//! barrier fast tier classifies pointers through.
//!
//! Modeled on mmtk-core's `SFTMap`: a flat table indexed by block id
//! whose entries are written through whenever a block's owner heap or
//! entangled flag changes, so classifying an arbitrary `ObjRef` costs a
//! couple of dependent loads — **no registry read-lock, no `Arc` clone,
//! no heap-table query**. Block ids are dense (the registry issues them
//! monotonically), so the table is a segmented array: a fixed spine of
//! lazily-initialized fixed-size segments, giving lock-free O(1) lookup
//! with bounded memory (`id >> SEG_SHIFT` picks the segment, the low bits
//! pick the slot; the only synchronization is the `OnceLock` fill on
//! first touch of a segment).
//!
//! Entries are packed `u64`s:
//!
//! ```text
//! bit  63     PRESENT   — block is live (cleared when freed)
//! bit  62     ENTANGLED — block was retained by a local collection and
//!             is swept by the concurrent collector
//! bits 0..32  owner heap id (as written at allocation/merge; not
//!             canonicalized — exactly the same value `Block::owner`
//!             holds, which is what the barrier's leaf-identity check
//!             compares against)
//! ```
//!
//! The entry is advisory for *classification only*: a stale read (e.g. a
//! block freed between the load and the access) falls back to the slow
//! tier or the registry's own freed-block panic, never to a wrong fast
//! path — the fast tier only fires when the entry proves both sides
//! local, and locality is stable while the owning task runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

const SEG_SHIFT: u32 = 12;
const SEG_LEN: usize = 1 << SEG_SHIFT; // 4096 entries per segment
const SEGMENTS: usize = 1 << 12; // spine for up to ~16.7M blocks

const PRESENT: u64 = 1 << 63;
const ENTANGLED: u64 = 1 << 62;
const OWNER_MASK: u64 = 0xFFFF_FFFF;

/// A decoded SFT entry for a live block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SftEntry {
    /// The block's owner heap id (uncanonicalized, as stored on the block).
    pub owner: u32,
    /// Whether the block has been retained into the entangled space.
    pub entangled: bool,
}

/// The segmented block-classification table. One per [`crate::Store`].
pub struct SftTable {
    segments: Box<[OnceLock<Box<[AtomicU64]>>]>,
}

impl std::fmt::Debug for SftTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let live = self.segments.iter().filter(|s| s.get().is_some()).count();
        f.debug_struct("SftTable")
            .field("segments_touched", &live)
            .finish()
    }
}

impl Default for SftTable {
    fn default() -> Self {
        SftTable::new()
    }
}

impl SftTable {
    /// Creates an empty table (no segments materialized).
    pub fn new() -> SftTable {
        let segments: Vec<OnceLock<Box<[AtomicU64]>>> =
            (0..SEGMENTS).map(|_| OnceLock::new()).collect();
        SftTable {
            segments: segments.into_boxed_slice(),
        }
    }

    fn segment(&self, id: u32) -> &[AtomicU64] {
        let seg = (id >> SEG_SHIFT) as usize;
        assert!(seg < SEGMENTS, "block id {id} beyond SFT capacity");
        self.segments[seg].get_or_init(|| (0..SEG_LEN).map(|_| AtomicU64::new(0)).collect())
    }

    fn slot(&self, id: u32) -> &AtomicU64 {
        &self.segment(id)[(id as usize) & (SEG_LEN - 1)]
    }

    /// Publishes (or updates) the entry for a live block. Called by the
    /// block on construction and on every owner/entangled transition.
    pub fn publish(&self, id: u32, owner: u32, entangled: bool) {
        let bits = PRESENT | u64::from(owner) | if entangled { ENTANGLED } else { 0 };
        self.slot(id).store(bits, Ordering::Release);
    }

    /// Clears the entry when the block is freed.
    pub fn retract(&self, id: u32) {
        self.slot(id).store(0, Ordering::Release);
    }

    /// Classifies a block id: `None` for unknown/freed blocks. The fast
    /// path the barrier takes: a shift, a segment load, an entry load.
    #[inline]
    pub fn classify(&self, id: u32) -> Option<SftEntry> {
        let seg = (id >> SEG_SHIFT) as usize;
        let table = self.segments.get(seg)?.get()?;
        let bits = table[(id as usize) & (SEG_LEN - 1)].load(Ordering::Acquire);
        if bits & PRESENT == 0 {
            return None;
        }
        Some(SftEntry {
            owner: (bits & OWNER_MASK) as u32,
            entangled: bits & ENTANGLED != 0,
        })
    }

    /// The owner heap of a live block, or `None` if freed/unknown.
    #[inline]
    pub fn owner_of(&self, id: u32) -> Option<u32> {
        self.classify(id).map(|e| e.owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_classify_retract() {
        let t = SftTable::new();
        assert_eq!(t.classify(7), None);
        t.publish(7, 3, false);
        assert_eq!(
            t.classify(7),
            Some(SftEntry {
                owner: 3,
                entangled: false
            })
        );
        t.publish(7, 3, true);
        assert!(t.classify(7).unwrap().entangled);
        t.retract(7);
        assert_eq!(t.classify(7), None);
    }

    #[test]
    fn cross_segment_ids() {
        let t = SftTable::new();
        let far = (SEG_LEN * 3 + 17) as u32;
        t.publish(far, 99, false);
        assert_eq!(t.owner_of(far), Some(99));
        assert_eq!(t.owner_of(far + 1), None);
    }
}
