//! Per-tenant heap budgets.
//!
//! PR 5's heap limit is one global gauge: any task's allocation can trip
//! it, and one misbehaving workload starves every other. A
//! [`TenantBudget`] scopes the same discipline to a *subtree* of the heap
//! hierarchy: the budget handle is attached to a tenant's root heap and
//! inherited by every child heap created under it
//! ([`crate::heap::HeapTable::fork`]), so the live bytes of a whole
//! tenant — root heap plus all in-flight request heaps — are accounted
//! against one limit while other tenants' allocations never touch it.
//!
//! Accounting follows the global live-bytes gauge exactly:
//!
//! * **charge** — mutators charge their task-buffered allocation bytes at
//!   stats-flush safepoints (the same batching as the global gauge, so
//!   the hot allocation path pays nothing for budgets);
//! * **credit** — the local collector credits the bytes it reclaims from
//!   a budgeted heap, and the concurrent collector credits swept bytes to
//!   each swept block's owning heap's budget.
//!
//! Enforcement is the runtime's job (only it can run collectors): the
//! pressure ladder checks [`TenantBudget::would_exceed`] alongside the
//! global limit and raises the same recoverable `AllocError`, which is
//! what admission control in a serving layer catches to shed that
//! tenant's request while other tenants proceed untouched.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A live-byte budget shared by one tenant's heap subtree. Cheap to
/// clone (held by `Arc` in every [`crate::heap::HeapInfo`] under the
/// tenant's root); all counters are plain relaxed atomics.
#[derive(Debug)]
pub struct TenantBudget {
    name: String,
    limit: usize,
    live: AtomicUsize,
    max_live: AtomicUsize,
    /// Allocations rejected against this budget (admission-control sheds).
    sheds: AtomicU64,
    /// Collections forced because this budget (not the global limit) was
    /// exhausted.
    forced_gcs: AtomicU64,
}

/// A plain-value snapshot of a [`TenantBudget`] for reporting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BudgetSnapshot {
    /// Tenant name the budget was created with.
    pub name: String,
    /// Configured limit in bytes (`0` = unlimited, accounting only).
    pub limit: usize,
    /// Live bytes currently charged to the tenant.
    pub live_bytes: usize,
    /// High-water mark of the live-bytes gauge.
    pub max_live_bytes: usize,
    /// Allocations rejected against this budget.
    pub sheds: u64,
    /// Collections forced by pressure on this budget.
    pub forced_gcs: u64,
}

impl TenantBudget {
    /// Creates a budget of `limit` bytes (`0` = unlimited: the gauge is
    /// maintained for reporting but [`TenantBudget::would_exceed`] never
    /// fires).
    pub fn new(name: impl Into<String>, limit: usize) -> Arc<TenantBudget> {
        Arc::new(TenantBudget {
            name: name.into(),
            limit,
            live: AtomicUsize::new(0),
            max_live: AtomicUsize::new(0),
            sheds: AtomicU64::new(0),
            forced_gcs: AtomicU64::new(0),
        })
    }

    /// The tenant name the budget was created with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured limit in bytes (`0` = unlimited).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Live bytes currently charged to this budget.
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of the live gauge.
    pub fn max_live_bytes(&self) -> usize {
        self.max_live.load(Ordering::Relaxed)
    }

    /// True when a limit is set and an allocation of `extra` bytes would
    /// push the gauge past it. Best-effort like the global limit: the
    /// gauge is updated by batched mutator flushes, so enforcement
    /// granularity is a stats-flush window.
    pub fn would_exceed(&self, extra: usize) -> bool {
        self.limit != 0 && self.live.load(Ordering::Relaxed).saturating_add(extra) > self.limit
    }

    /// Charges allocated bytes to the budget (mutator stats flush).
    pub fn charge(&self, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let now = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let mut cur = self.max_live.load(Ordering::Relaxed);
        while now > cur {
            match self.max_live.compare_exchange_weak(
                cur,
                now,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// Credits reclaimed bytes back to the budget (collector side;
    /// saturating, so snapshot skew never underflows).
    pub fn credit(&self, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let mut cur = self.live.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .live
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Records an allocation rejected against this budget.
    pub fn on_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Allocations rejected against this budget so far.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Records a collection forced by pressure on this budget.
    pub fn on_forced_gc(&self) {
        self.forced_gcs.fetch_add(1, Ordering::Relaxed);
    }

    /// Collections forced by pressure on this budget so far.
    pub fn forced_gcs(&self) -> u64 {
        self.forced_gcs.load(Ordering::Relaxed)
    }

    /// A plain-value snapshot for reporting.
    pub fn snapshot(&self) -> BudgetSnapshot {
        BudgetSnapshot {
            name: self.name.clone(),
            limit: self.limit,
            live_bytes: self.live_bytes(),
            max_live_bytes: self.max_live_bytes(),
            sheds: self.sheds(),
            forced_gcs: self.forced_gcs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_credit_and_high_water() {
        let b = TenantBudget::new("t0", 1000);
        b.charge(600);
        b.charge(100);
        assert_eq!(b.live_bytes(), 700);
        assert_eq!(b.max_live_bytes(), 700);
        b.credit(500);
        assert_eq!(b.live_bytes(), 200);
        assert_eq!(b.max_live_bytes(), 700, "high-water sticks");
        b.credit(10_000);
        assert_eq!(b.live_bytes(), 0, "saturating");
    }

    #[test]
    fn would_exceed_respects_limit() {
        let b = TenantBudget::new("t0", 100);
        assert!(!b.would_exceed(100));
        assert!(b.would_exceed(101));
        b.charge(80);
        assert!(!b.would_exceed(20));
        assert!(b.would_exceed(21));
        let unlimited = TenantBudget::new("t1", 0);
        unlimited.charge(usize::MAX / 2);
        assert!(!unlimited.would_exceed(usize::MAX / 2), "0 = unlimited");
    }

    #[test]
    fn shed_and_forced_counters() {
        let b = TenantBudget::new("t0", 10);
        b.on_shed();
        b.on_shed();
        b.on_forced_gc();
        let s = b.snapshot();
        assert_eq!(s.sheds, 2);
        assert_eq!(s.forced_gcs, 1);
        assert_eq!(s.name, "t0");
        assert_eq!(s.limit, 10);
    }
}
