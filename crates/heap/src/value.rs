//! Runtime values and their tagged machine-word encoding.
//!
//! Every field of a heap object is stored as a single 64-bit [`Word`].
//! The low two bits carry the tag:
//!
//! | tag  | payload                                        |
//! |------|------------------------------------------------|
//! | `00` | small integer, 62-bit two's complement         |
//! | `01` | object reference: 31-bit block, 31-bit offset  |
//! | `10` | unit                                           |
//! | `11` | boolean (bit 2)                                |
//!
//! The API-level type is [`Value`]; [`Word`] is the storage form. Keeping
//! the encoding in one module lets the collectors scan fields without
//! knowing anything about object kinds: a word either is or is not a
//! pointer.

use std::fmt;

/// A reference to a heap object: an index into the global block registry
/// plus the object's header word offset within that block.
///
/// `ObjRef` is a *location*, not a stable identity: the local collector may
/// move an object, leaving a forwarding entry at the old location. Code that
/// holds an `ObjRef` across a safepoint must re-resolve it (see
/// `Store::resolve`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef {
    block: u32,
    word: u32,
}

impl ObjRef {
    /// Maximum representable block id or word offset (31 bits).
    pub const MAX_INDEX: u32 = (1 << 31) - 1;

    /// Creates a reference to the object at word offset `word` of `block`.
    ///
    /// # Panics
    ///
    /// Panics if either index exceeds [`ObjRef::MAX_INDEX`]; the tagged
    /// encoding reserves two bits of the word for the tag.
    #[inline]
    pub fn new(block: u32, word: u32) -> Self {
        assert!(
            block <= Self::MAX_INDEX && word <= Self::MAX_INDEX,
            "object reference index out of encodable range"
        );
        ObjRef { block, word }
    }

    /// The block id.
    #[inline]
    pub fn block(self) -> u32 {
        self.block
    }

    /// The header's word offset within the block.
    #[inline]
    pub fn word(self) -> u32 {
        self.word
    }
}

impl fmt::Debug for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}w{}", self.block, self.word)
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An immediate or boxed runtime value.
///
/// This is the type mutators see. Integers are limited to 62 bits so the
/// whole value fits in one tagged word; larger payloads (strings, floats,
/// records) live behind an [`ObjRef`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// The unit value.
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 62-bit signed integer.
    Int(i64),
    /// A reference to a heap object.
    Obj(ObjRef),
}

impl Value {
    /// Returns the object reference if this is a pointer value.
    #[inline]
    pub fn as_obj(self) -> Option<ObjRef> {
        match self {
            Value::Obj(r) => Some(r),
            _ => None,
        }
    }

    /// Returns the integer payload if this is an integer value.
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a boolean value.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Unwraps an integer, panicking with a helpful message otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::Int`].
    pub fn expect_int(self) -> i64 {
        self.as_int()
            .unwrap_or_else(|| panic!("expected integer value, found {self:?}"))
    }

    /// Unwraps an object reference, panicking with a helpful message otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::Obj`].
    pub fn expect_obj(self) -> ObjRef {
        self.as_obj()
            .unwrap_or_else(|| panic!("expected object reference, found {self:?}"))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<ObjRef> for Value {
    fn from(r: ObjRef) -> Self {
        Value::Obj(r)
    }
}

/// Range of integers representable as an immediate [`Value::Int`].
pub const INT_MIN: i64 = -(1 << 61);
/// See [`INT_MIN`].
pub const INT_MAX: i64 = (1 << 61) - 1;

const TAG_MASK: u64 = 0b11;
const TAG_INT: u64 = 0b00;
const TAG_OBJ: u64 = 0b01;
const TAG_UNIT: u64 = 0b10;
const TAG_BOOL: u64 = 0b11;

/// The tagged 64-bit storage encoding of a [`Value`].
///
/// `Word` is what actually sits in object fields (as an `AtomicU64`
/// payload). The zero word decodes to `Int(0)`, which makes freshly
/// zero-initialized memory a valid field image.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Word(u64);

impl Word {
    /// The unit word, also used to initialize fields before first write.
    pub const UNIT: Word = Word(TAG_UNIT);

    /// Encodes a value into its word form.
    ///
    /// # Panics
    ///
    /// Panics if an integer falls outside `[INT_MIN, INT_MAX]`.
    #[inline]
    pub fn encode(v: Value) -> Word {
        match v {
            Value::Unit => Word(TAG_UNIT),
            Value::Bool(b) => Word(TAG_BOOL | ((b as u64) << 2)),
            Value::Int(i) => {
                assert!(
                    (INT_MIN..=INT_MAX).contains(&i),
                    "integer {i} outside 62-bit immediate range"
                );
                Word(((i as u64) << 2) | TAG_INT)
            }
            Value::Obj(r) => Word(((r.block() as u64) << 33) | ((r.word() as u64) << 2) | TAG_OBJ),
        }
    }

    /// Decodes the word back into a value.
    #[inline]
    pub fn decode(self) -> Value {
        match self.0 & TAG_MASK {
            TAG_INT => Value::Int((self.0 as i64) >> 2),
            TAG_OBJ => {
                let word = ((self.0 >> 2) & (ObjRef::MAX_INDEX as u64)) as u32;
                let block = (self.0 >> 33) as u32;
                Value::Obj(ObjRef::new(block, word))
            }
            TAG_UNIT => Value::Unit,
            _ => Value::Bool((self.0 >> 2) & 1 == 1),
        }
    }

    /// True if the word encodes an object reference (a pointer).
    #[inline]
    pub fn is_pointer(self) -> bool {
        self.0 & TAG_MASK == TAG_OBJ
    }

    /// Returns the pointer payload without fully decoding, if present.
    #[inline]
    pub fn pointer(self) -> Option<ObjRef> {
        if self.is_pointer() {
            match self.decode() {
                Value::Obj(r) => Some(r),
                _ => unreachable!("pointer tag decoded to non-object"),
            }
        } else {
            None
        }
    }

    /// The raw 64-bit representation, for atomic storage.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a word from raw bits previously produced by [`Word::bits`].
    #[inline]
    pub fn from_bits(bits: u64) -> Word {
        Word(bits)
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word({:?})", self.decode())
    }
}

impl From<Value> for Word {
    fn from(v: Value) -> Self {
        Word::encode(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        for i in [0i64, 1, -1, 42, -42, INT_MIN, INT_MAX, 123_456_789] {
            assert_eq!(Word::encode(Value::Int(i)).decode(), Value::Int(i));
        }
    }

    #[test]
    fn obj_roundtrip() {
        for (b, w) in [(0u32, 0u32), (1, 2), (ObjRef::MAX_INDEX, ObjRef::MAX_INDEX)] {
            let r = ObjRef::new(b, w);
            let word = Word::encode(Value::Obj(r));
            assert!(word.is_pointer());
            assert_eq!(word.decode(), Value::Obj(r));
            assert_eq!(word.pointer(), Some(r));
        }
    }

    #[test]
    fn unit_and_bool_roundtrip() {
        assert_eq!(Word::encode(Value::Unit).decode(), Value::Unit);
        assert_eq!(Word::encode(Value::Bool(true)).decode(), Value::Bool(true));
        assert_eq!(
            Word::encode(Value::Bool(false)).decode(),
            Value::Bool(false)
        );
        assert!(!Word::encode(Value::Unit).is_pointer());
        assert!(!Word::encode(Value::Bool(true)).is_pointer());
    }

    #[test]
    fn zero_word_is_int_zero() {
        assert_eq!(Word::from_bits(0).decode(), Value::Int(0));
    }

    #[test]
    #[should_panic(expected = "62-bit immediate range")]
    fn out_of_range_int_panics() {
        let _ = Word::encode(Value::Int(i64::MAX));
    }

    #[test]
    fn non_pointers_have_no_pointer_payload() {
        assert_eq!(Word::encode(Value::Int(7)).pointer(), None);
        assert_eq!(Word::UNIT.pointer(), None);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_obj(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        let r = ObjRef::new(1, 1);
        assert_eq!(Value::Obj(r).as_obj(), Some(r));
        assert_eq!(Value::Obj(r).expect_obj(), r);
        assert_eq!(Value::Int(9).expect_int(), 9);
    }

    #[test]
    fn objref_display() {
        assert_eq!(format!("{}", ObjRef::new(3, 17)), "b3w17");
    }
}
