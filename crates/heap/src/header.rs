//! Object header words: kind, length, pin state, collector flags.
//!
//! Every object's first inline word is an atomic header manipulated with
//! compare-and-swap. The layout is:
//!
//! ```text
//! bits 0..3   object kind (ObjKind)
//! bit  3      PINNED      — entangled; local collector must not move it
//! bit  4      FORWARDED   — object was evacuated; the `fwd` word holds
//!             the new location
//! bit  6      DEAD        — swept by the concurrent collector
//! bit  7      ENTANGLED_SPACE — logically moved to the heap's entangled space
//! bits 8..24  pin level (u16); NO_PIN_LEVEL when unpinned
//! bits 32..56 field count (the object is self-describing inline)
//! ```
//!
//! The concurrent collector's **mark** bit and the barrier's **suspect**
//! bit used to live here too; both moved to per-block side-metadata
//! bitmaps (see [`crate::block::Block`]) so the collectors can sweep and
//! the barrier can classify without touching object headers. The bits
//! that *remain* in the header are exactly the ones that must stay under
//! one CAS: `try_kill`'s single-word recheck of
//! `PINNED`/`FORWARDED`/`DEAD`/`ENTANGLED_SPACE` is what closes the
//! pin-vs-kill race, and splitting any of those into side metadata would
//! reopen it.
//!
//! The *pin level* is the depth of the least common ancestor heap of the
//! entangling tasks, exactly the "entanglement level" the paper uses to
//! decide when a join makes unpinning safe: a join at depth `d` may unpin
//! every object whose level is `>= d`, because after that join no two tasks
//! that share the object are concurrent anymore.

use std::fmt;

/// Object kinds, stored in the low three header bits.
///
/// Mutability is a property of the kind: only [`ObjKind::Ref`] and
/// [`ObjKind::MutArr`] hold mutable *pointer-bearing* fields and therefore
/// require read/write barriers. [`ObjKind::RawArr`] is mutable but its
/// payload words are opaque bits, never pointers, so it needs no barrier —
/// this mirrors MPL's treatment of unboxed arrays.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum ObjKind {
    /// Immutable record of values (also used for immutable arrays).
    Tuple = 0,
    /// A single mutable cell (`ref` in ML).
    Ref = 1,
    /// A mutable array of values.
    MutArr = 2,
    /// A mutable array of raw 64-bit words (no pointers; no barriers).
    RawArr = 3,
}

impl ObjKind {
    /// Decodes a kind from its header bits.
    ///
    /// # Panics
    ///
    /// Panics on an invalid bit pattern, which indicates heap corruption.
    #[inline]
    pub fn from_bits(bits: u8) -> ObjKind {
        match bits {
            0 => ObjKind::Tuple,
            1 => ObjKind::Ref,
            2 => ObjKind::MutArr,
            3 => ObjKind::RawArr,
            other => panic!("invalid object kind bits {other}"),
        }
    }

    /// True for kinds whose fields may change after initialization *and*
    /// may contain pointers — exactly the kinds whose reads are barriered.
    #[inline]
    pub fn is_mutable_boxed(self) -> bool {
        matches!(self, ObjKind::Ref | ObjKind::MutArr)
    }

    /// True for kinds whose payload words may be pointers and must be
    /// traced by the collectors.
    #[inline]
    pub fn is_traced(self) -> bool {
        !matches!(self, ObjKind::RawArr)
    }
}

impl fmt::Display for ObjKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjKind::Tuple => "tuple",
            ObjKind::Ref => "ref",
            ObjKind::MutArr => "mutarr",
            ObjKind::RawArr => "rawarr",
        };
        f.write_str(s)
    }
}

const KIND_MASK: u64 = 0b111;
const PINNED: u64 = 1 << 3;
const FORWARDED: u64 = 1 << 4;
const DEAD: u64 = 1 << 6;
const ENTANGLED_SPACE: u64 = 1 << 7;
const LEVEL_SHIFT: u32 = 8;
const LEVEL_MASK: u64 = 0xFFFF << LEVEL_SHIFT;
const LEN_SHIFT: u32 = 32;
const LEN_MASK: u64 = 0xFF_FFFF << LEN_SHIFT;

/// Largest representable field count (24 bits of header).
pub const MAX_OBJECT_FIELDS: usize = (LEN_MASK >> LEN_SHIFT) as usize;

/// Sentinel pin level meaning "not pinned".
pub const NO_PIN_LEVEL: u16 = u16::MAX;

/// A decoded snapshot of a header word.
///
/// Snapshots are plain values: read one with an atomic load, inspect or
/// transform it, and attempt to install the result with compare-and-swap.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Header(u64);

impl Header {
    /// A fresh header for a newly allocated object of `kind` with `len`
    /// fields.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`MAX_OBJECT_FIELDS`].
    #[inline]
    pub fn new(kind: ObjKind, len: usize) -> Header {
        assert!(len <= MAX_OBJECT_FIELDS, "object of {len} fields too large");
        Header((kind as u64) | ((NO_PIN_LEVEL as u64) << LEVEL_SHIFT) | ((len as u64) << LEN_SHIFT))
    }

    /// Reconstructs a snapshot from raw bits.
    #[inline]
    pub fn from_bits(bits: u64) -> Header {
        Header(bits)
    }

    /// Raw bits for atomic storage.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// The object's kind.
    #[inline]
    pub fn kind(self) -> ObjKind {
        ObjKind::from_bits((self.0 & KIND_MASK) as u8)
    }

    /// The object's field count (inline layout is self-describing).
    #[inline]
    pub fn len(self) -> usize {
        ((self.0 & LEN_MASK) >> LEN_SHIFT) as usize
    }

    /// True if the object has no fields.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// True if the object is pinned (entangled).
    #[inline]
    pub fn is_pinned(self) -> bool {
        self.0 & PINNED != 0
    }

    /// True if the object has been evacuated; its `fwd` word is valid.
    #[inline]
    pub fn is_forwarded(self) -> bool {
        self.0 & FORWARDED != 0
    }

    /// True if the object has been swept and must no longer be accessed.
    #[inline]
    pub fn is_dead(self) -> bool {
        self.0 & DEAD != 0
    }

    /// True if the object lives in its heap's entangled (non-moving) space.
    #[inline]
    pub fn in_entangled_space(self) -> bool {
        self.0 & ENTANGLED_SPACE != 0
    }

    /// The pin level, or [`NO_PIN_LEVEL`] if unpinned.
    #[inline]
    pub fn pin_level(self) -> u16 {
        ((self.0 & LEVEL_MASK) >> LEVEL_SHIFT) as u16
    }

    /// Returns a copy with the pin bit set and the level lowered to
    /// `min(current, level)`.
    #[inline]
    pub fn with_pin(self, level: u16) -> Header {
        let lvl = self.pin_level().min(level) as u64;
        Header((self.0 & !LEVEL_MASK) | PINNED | (lvl << LEVEL_SHIFT))
    }

    /// Returns a copy with the pin bit cleared and the level reset.
    #[inline]
    pub fn without_pin(self) -> Header {
        Header((self.0 & !(PINNED | LEVEL_MASK)) | ((NO_PIN_LEVEL as u64) << LEVEL_SHIFT))
    }

    /// Returns a copy with the forwarded bit set.
    #[inline]
    pub fn with_forwarded(self) -> Header {
        Header(self.0 | FORWARDED)
    }

    /// Returns a copy with the dead bit set.
    #[inline]
    pub fn with_dead(self) -> Header {
        Header(self.0 | DEAD)
    }

    /// Returns a copy with the entangled-space bit set.
    #[inline]
    pub fn with_entangled_space(self) -> Header {
        Header(self.0 | ENTANGLED_SPACE)
    }

    /// Returns a copy with the entangled-space bit cleared.
    #[inline]
    pub fn without_entangled_space(self) -> Header {
        Header(self.0 & !ENTANGLED_SPACE)
    }
}

impl fmt::Debug for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Header")
            .field("kind", &self.kind())
            .field("len", &self.len())
            .field("pinned", &self.is_pinned())
            .field("level", &self.pin_level())
            .field("forwarded", &self.is_forwarded())
            .field("dead", &self.is_dead())
            .field("entangled_space", &self.in_entangled_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_header_defaults() {
        let h = Header::new(ObjKind::Ref, 3);
        assert_eq!(h.kind(), ObjKind::Ref);
        assert_eq!(h.len(), 3);
        assert!(!h.is_pinned());
        assert!(!h.is_forwarded());
        assert!(!h.is_dead());
        assert!(!h.in_entangled_space());
        assert_eq!(h.pin_level(), NO_PIN_LEVEL);
    }

    #[test]
    fn pin_lowers_level_monotonically() {
        let h = Header::new(ObjKind::Tuple, 0).with_pin(7);
        assert!(h.is_pinned());
        assert_eq!(h.pin_level(), 7);
        let h2 = h.with_pin(12);
        assert_eq!(h2.pin_level(), 7, "pin level must only decrease");
        let h3 = h2.with_pin(3);
        assert_eq!(h3.pin_level(), 3);
    }

    #[test]
    fn unpin_resets_level() {
        let h = Header::new(ObjKind::MutArr, 5).with_pin(2).without_pin();
        assert!(!h.is_pinned());
        assert_eq!(h.pin_level(), NO_PIN_LEVEL);
        assert_eq!(h.kind(), ObjKind::MutArr);
        assert_eq!(h.len(), 5, "length survives pin state changes");
    }

    #[test]
    fn flags_are_independent() {
        let h = Header::new(ObjKind::Tuple, 1)
            .with_pin(1)
            .with_forwarded()
            .with_entangled_space();
        assert!(h.is_pinned() && h.is_forwarded());
        assert!(h.in_entangled_space());
        assert_eq!(h.kind(), ObjKind::Tuple);
        assert_eq!(h.len(), 1);
        let h = h.without_entangled_space();
        assert!(!h.in_entangled_space());
        assert!(h.is_forwarded());
    }

    #[test]
    fn kind_predicates() {
        assert!(ObjKind::Ref.is_mutable_boxed());
        assert!(ObjKind::MutArr.is_mutable_boxed());
        assert!(!ObjKind::Tuple.is_mutable_boxed());
        assert!(!ObjKind::RawArr.is_mutable_boxed());
        assert!(ObjKind::Tuple.is_traced());
        assert!(!ObjKind::RawArr.is_traced());
    }

    #[test]
    fn bits_roundtrip() {
        let h = Header::new(ObjKind::RawArr, 9).with_pin(9).with_dead();
        assert_eq!(Header::from_bits(h.bits()), h);
    }

    #[test]
    fn max_len_roundtrips() {
        let h = Header::new(ObjKind::Tuple, MAX_OBJECT_FIELDS);
        assert_eq!(h.len(), MAX_OBJECT_FIELDS);
        assert_eq!(h.pin_level(), NO_PIN_LEVEL);
    }
}
