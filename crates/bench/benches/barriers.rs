//! Criterion microbenchmarks for the mutator barriers: the per-operation
//! costs behind experiment E7.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mpl_runtime::{GcPolicy, Runtime, RuntimeConfig, Value};

fn nogc(cfg: RuntimeConfig) -> RuntimeConfig {
    cfg.with_policy(GcPolicy::disabled())
}

fn bench_barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("barriers");
    g.sample_size(30);

    g.bench_function("read_ref_local_managed", |b| {
        let rt = Runtime::new(nogc(RuntimeConfig::managed()));
        rt.run(|m| {
            let r = m.alloc_ref(Value::Int(1));
            b.iter(|| black_box(m.read_ref(r)));
            Value::Unit
        });
    });

    g.bench_function("read_ref_local_nobarrier", |b| {
        let rt = Runtime::new(nogc(RuntimeConfig::no_barrier()));
        rt.run(|m| {
            let r = m.alloc_ref(Value::Int(1));
            b.iter(|| black_box(m.read_ref(r)));
            Value::Unit
        });
    });

    g.bench_function("tuple_get", |b| {
        let rt = Runtime::new(nogc(RuntimeConfig::managed()));
        rt.run(|m| {
            let t = m.alloc_tuple(&[Value::Int(1), Value::Int(2)]);
            b.iter(|| black_box(m.tuple_get(t, 0)));
            Value::Unit
        });
    });

    g.bench_function("raw_get", |b| {
        let rt = Runtime::new(nogc(RuntimeConfig::managed()));
        rt.run(|m| {
            let a = m.alloc_raw(8);
            b.iter(|| black_box(m.raw_get(a, 3)));
            Value::Unit
        });
    });

    g.bench_function("write_ref_local", |b| {
        let rt = Runtime::new(nogc(RuntimeConfig::managed()));
        rt.run(|m| {
            let r = m.alloc_ref(Value::Int(1));
            b.iter(|| m.write_ref(r, Value::Int(2)));
            Value::Unit
        });
    });

    g.bench_function("read_ref_entangled_steady", |b| {
        let rt = Runtime::new(nogc(RuntimeConfig::managed()));
        rt.run(|m| {
            let cell = m.alloc_ref(Value::Unit);
            let c = m.root(cell);
            m.fork(
                |m| {
                    let boxed = m.alloc_tuple(&[Value::Int(7)]);
                    m.write_ref(m.get(&c), boxed);
                    Value::Unit
                },
                |m| {
                    let cell = m.get(&c);
                    let _ = m.read_ref(cell); // establish the pin
                    b.iter(|| {
                        let cell = m.get(&c);
                        black_box(m.read_ref(cell))
                    });
                    Value::Unit
                },
            );
            Value::Unit
        });
    });

    g.bench_function("alloc_tuple_2", |b| {
        let rt = Runtime::new(RuntimeConfig::managed());
        rt.run(|m| {
            b.iter(|| black_box(m.alloc_tuple(&[Value::Int(1), Value::Int(2)])));
            Value::Unit
        });
    });

    g.finish();
}

criterion_group!(benches, bench_barriers);
criterion_main!(benches);
