//! Criterion benchmarks for the virtual-time scheduler simulation itself
//! (how fast we can replay DAGs at various processor counts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mpl_runtime::{simulate, Runtime, RuntimeConfig, SimParams, Value};

fn recorded_dag() -> mpl_runtime::Dag {
    let bench = mpl_bench_suite::by_name("msort").expect("msort");
    let rt = Runtime::new(RuntimeConfig::managed().with_dag());
    rt.run(|m| Value::Int(bench.run_mpl(m, bench.small_n())));
    rt.take_dag().expect("dag recorded")
}

fn bench_sim(c: &mut Criterion) {
    let dag = recorded_dag();
    let mut g = c.benchmark_group("simsched");
    g.sample_size(30);
    for procs in [1usize, 8, 64] {
        g.bench_with_input(BenchmarkId::new("msort_dag", procs), &procs, |b, &procs| {
            b.iter(|| {
                simulate(
                    &dag,
                    SimParams {
                        procs,
                        steal_overhead: 8,
                        seed: 1,
                    },
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
