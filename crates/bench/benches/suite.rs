//! Criterion benchmarks over the suite: managed runtime vs the sequential
//! baseline on representative workloads (small sizes; the experiment
//! binaries measure full scale).

use criterion::{criterion_group, criterion_main, Criterion};

use mpl_baselines::SeqRuntime;
use mpl_runtime::{Runtime, RuntimeConfig, Value};

const SELECTED: &[&str] = &["fib", "msort", "tokens", "dedup", "conc_stack"];

fn bench_suite(c: &mut Criterion) {
    for name in SELECTED {
        let bench = mpl_bench_suite::by_name(name).expect("known benchmark");
        let n = bench.small_n();
        let mut g = c.benchmark_group(format!("suite/{name}"));
        g.sample_size(10);
        g.bench_function("mpl", |b| {
            b.iter(|| {
                let rt = Runtime::new(RuntimeConfig::managed());
                rt.run(|m| Value::Int(bench.run_mpl(m, n)))
            });
        });
        g.bench_function("seq", |b| {
            b.iter(|| {
                let mut rt = SeqRuntime::default();
                bench.run_seq(&mut rt, n)
            });
        });
        g.bench_function("native", |b| {
            b.iter(|| bench.run_native(n));
        });
        g.finish();
    }
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
