//! Criterion benchmarks for the language stack: the formal-semantics
//! interpreter vs the compiled pipeline on the managed runtime.

use criterion::{criterion_group, criterion_main, Criterion};

use mpl_lang::{run_program, LangMode, Options, Schedule};
use mpl_runtime::{Runtime, RuntimeConfig};

fn bench_lang(c: &mut Criterion) {
    for (name, src) in [
        ("fib", mpl_lang::examples::FIB),
        ("tree_sum", mpl_lang::examples::TREE_SUM),
        ("array_sum", mpl_lang::examples::ARRAY_SUM),
        ("entangle_publish", mpl_lang::examples::ENTANGLE_PUBLISH),
    ] {
        let mut g = c.benchmark_group(format!("lang/{name}"));
        g.sample_size(20);
        g.bench_function("semantics", |b| {
            b.iter(|| {
                run_program(
                    src,
                    Options {
                        schedule: Schedule::DepthFirst,
                        mode: LangMode::Managed,
                        fuel: 50_000_000,
                    },
                )
                .unwrap()
            });
        });
        g.bench_function("compiled", |b| {
            b.iter(|| {
                let rt = Runtime::new(RuntimeConfig::managed());
                mpl_compile::run_source(&rt, src, 50_000_000).unwrap()
            });
        });
        g.bench_function("typecheck_only", |b| {
            let ast = mpl_lang::parse(src).unwrap();
            b.iter(|| mpl_compile::typecheck(&ast).unwrap());
        });
        g.finish();
    }

    // Futures (semantics-only): schedule cost of the strict-futures
    // machinery vs the plain fork-join interpreter above.
    let mut g = c.benchmark_group("lang/future_pipeline");
    g.sample_size(20);
    for (sname, schedule) in [
        ("depth_first", Schedule::DepthFirst),
        ("round_robin", Schedule::RoundRobin),
    ] {
        g.bench_function(sname, |b| {
            b.iter(|| {
                run_program(
                    mpl_lang::examples::FUTURE_PIPELINE,
                    Options {
                        schedule,
                        mode: LangMode::Managed,
                        fuel: 1_000_000,
                    },
                )
                .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lang);
criterion_main!(benches);
