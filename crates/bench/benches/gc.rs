//! Criterion benchmarks for the collectors: local collection at several
//! live fractions, pin shielding, and the O(1) join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mpl_gc::{collect_local, Graveyard};
use mpl_heap::{ObjKind, ObjRef, Store, StoreConfig, Value};

/// Builds a heap with `n` objects of which every `keep_every`-th is
/// rooted (a live-fraction knob), then measures one collection.
fn bench_lgc(c: &mut Criterion) {
    let mut g = c.benchmark_group("lgc");
    g.sample_size(20);
    for keep_every in [2usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("collect_4k_objects_live_1_in", keep_every),
            &keep_every,
            |b, &keep_every| {
                b.iter_with_setup(
                    || {
                        let s = Store::new(StoreConfig::default());
                        let root = s.new_root_heap();
                        let (l, _r) = s.fork_heaps(root);
                        let mut roots = Vec::new();
                        for i in 0..4096 {
                            let o = s.alloc_values(l, ObjKind::Tuple, &[Value::Int(i)]);
                            if (i as usize).is_multiple_of(keep_every) {
                                roots.push(o);
                            }
                        }
                        (s, l, roots)
                    },
                    |(s, l, mut roots)| {
                        let g = Graveyard::new();
                        collect_local(&s, l, &mut roots, &g, true)
                    },
                );
            },
        );
    }
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    g.sample_size(30);
    g.bench_function("fork_join_with_64_pins", |b| {
        b.iter_with_setup(
            || {
                let s = Store::new(StoreConfig::default());
                let root = s.new_root_heap();
                let (l, r) = s.fork_heaps(root);
                for i in 0..64 {
                    let o = s.alloc_values(l, ObjKind::Ref, &[Value::Int(i)]);
                    s.pin(o, 0);
                }
                (s, root, l, r)
            },
            |(s, root, l, r)| s.join(root, l, r),
        );
    });
    g.bench_function("pin_unpinned_object", |b| {
        let s = Store::new(StoreConfig::default());
        let root = s.new_root_heap();
        let (l, _r) = s.fork_heaps(root);
        let objs: Vec<ObjRef> = (0..4096)
            .map(|i| s.alloc_values(l, ObjKind::Ref, &[Value::Int(i)]))
            .collect();
        let mut i = 0;
        b.iter(|| {
            let r = objs[i % objs.len()];
            i += 1;
            s.pin(r, 0)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_lgc, bench_join);
criterion_main!(benches);
