//! E15 — Heap census: cost and fidelity of the on-demand side-metadata
//! walk, plus the flight-recorder artifact CI decodes.
//!
//! Four measurements:
//!
//! * **Census cost** — build an entangled heap of ≥100k live objects
//!   (rooted cons list + a fork publish/read loop that pins), then time
//!   `Runtime::heap_census()`. The walk reads only per-block bitmaps and
//!   gauges, so it must complete in well under a second at this scale
//!   (asserted).
//! * **Fidelity** — after the run quiesces and a forced concurrent
//!   collection, the census's summed per-block live bytes must equal the
//!   runtime's live-bytes gauge exactly (the same invariant the census
//!   proptest checks on random graphs).
//! * **Suite overhead** — the disentangled suite, telemetry off vs on,
//!   interleaved medians. Telemetry now carries the census piggybacks
//!   (GC-epilogue deltas), provenance sampling, and the flight-recorder
//!   span feed; the claim is the suite still runs within ~2% of the
//!   untelemetered build, and the disabled cost stays one relaxed load
//!   per site.
//! * **Artifacts** — `results/e15_census_snapshot.json` (the census
//!   document CI schema-validates), `results/e15_census.prom` (the
//!   `mpl_census_*` families for the promtool-style check), and
//!   `results/e15_flight.bin` (a flight-recorder dump CI decodes with
//!   `examples/flight_decode`).
//!
//! `--smoke` runs single repetitions; the census heap keeps its ≥100k
//! objects either way (the walk is the thing under test and it is cheap).

use std::time::{Duration, Instant};

use mpl_bench::{fmt_dur, run_mpl, scale_bench, write_json, Table};
use mpl_runtime::{Runtime, RuntimeConfig, Value};
use serde::Serialize;

/// Live objects in the census heap (the acceptance floor is 100k).
const CENSUS_OBJECTS: usize = 120_000;
/// Entangled reads performed by the reader branch: enough that the
/// 1-in-64 provenance sampler retains a meaningful population.
const ENTANGLED_READS: usize = 10_000;

#[derive(Serialize)]
struct OverheadRow {
    name: String,
    t_disabled_us: u128,
    t_enabled_us: u128,
    overhead: f64,
}

#[derive(Serialize)]
struct E15 {
    smoke: bool,
    reps: usize,
    /// Objects the census counted in the big heap.
    census_objects: u64,
    /// Wall time of one on-demand census of that heap, ns.
    census_ns: u64,
    /// Census live bytes vs the runtime gauge at the quiescent check.
    census_live_bytes: u64,
    gauge_live_bytes: u64,
    /// Pinned objects observed while the entangled reader ran.
    pinned_at_capture: u64,
    /// Whole-heap fragmentation at capture.
    fragmentation: f64,
    /// Provenance ring population at capture.
    provenance_recorded: u64,
    provenance_retained: u64,
    provenance_mean_depth_gap: f64,
    /// Suite overhead rows (telemetry off vs on) and their median.
    overhead: Vec<OverheadRow>,
    median_overhead: f64,
    /// Flight-recorder events in the dumped artifact.
    flight_events: usize,
}

fn median(xs: &mut [Duration]) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 5 };
    println!(
        "E15: heap census — cost, fidelity, overhead, flight artifacts{}\n",
        if smoke { " (smoke)" } else { "" }
    );

    // ------------------------------------------------------------------
    // 1. Census cost + capture on a ≥100k-object entangled heap.
    // ------------------------------------------------------------------
    mpl_obs::reset_provenance();
    mpl_obs::clear_flight();
    let rt = Runtime::new(RuntimeConfig::managed().with_telemetry());
    let mut census_ns = 0u64;
    let mut captured: Option<mpl_obs::HeapCensus> = None;
    rt.run(|m| {
        // The bulk heap: a rooted cons list the collectors must retain.
        let mut list = Value::Unit;
        for i in 0..CENSUS_OBJECTS as i64 {
            list = m.alloc_tuple(&[Value::Int(i), list]);
        }
        let _keep = m.root(list);
        // Entangle: the left branch publishes a pair into the parent's
        // cell; the right branch reads it repeatedly. Each read crosses
        // into the sibling's heap (slow tier, pin), feeding the
        // provenance sampler. The census is taken *inside* the reader,
        // after its read loop but before the join releases the pin, so
        // the capture sees the entangled block and the pinned object.
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);
        let (_, reads) = m.fork(
            |m| {
                let pair = m.alloc_tuple(&[Value::Int(40), Value::Int(2)]);
                m.write_ref(m.get(&c), pair);
                Value::Int(0)
            },
            |m| {
                let mut seen = 0i64;
                let mut done = 0usize;
                while done < ENTANGLED_READS {
                    let v = m.read_ref(m.get(&c));
                    if let Value::Obj(_) = v {
                        seen += m.tuple_get(v, 0).expect_int();
                        done += 1;
                    }
                }
                m.sync_stats();
                let t = Instant::now();
                let census = m.runtime().heap_census();
                census_ns = t.elapsed().as_nanos() as u64;
                captured = Some(census);
                Value::Int(seen)
            },
        );
        std::hint::black_box(reads);
        Value::Unit
    });
    let census = captured.expect("census captured");
    println!(
        "census of {} objects in {} blocks: {} ({} live KiB, frag {:.1}%, {} pinned)",
        census.objects(),
        census.blocks,
        fmt_dur(Duration::from_nanos(census_ns)),
        census.live_bytes / 1024,
        census.fragmentation() * 100.0,
        census.pinned_objects(),
    );
    assert!(
        census.objects() >= 100_000,
        "census heap too small: {} objects",
        census.objects()
    );
    assert!(
        census_ns < 1_000_000_000,
        "census of a ~100k-object heap took {census_ns} ns — the walk is not bounded"
    );
    assert!(
        census.pinned_objects() >= 1,
        "the capture ran under a live entangled pin, so it must see it"
    );
    let prov = mpl_obs::provenance_summary();
    println!(
        "provenance: {} recorded, {} retained, mean depth gap {:.2}, {} pinned-at-sample",
        prov.recorded, prov.retained, prov.mean_depth_gap, prov.pinned
    );
    assert!(
        prov.recorded > 0,
        "1-in-64 sampling over {ENTANGLED_READS} entangled reads recorded nothing"
    );

    // ------------------------------------------------------------------
    // 2. Fidelity: quiescent census vs the live-bytes gauge.
    // ------------------------------------------------------------------
    rt.force_cgc();
    let quiet = rt.heap_census();
    let gauge = rt.stats().live_bytes as u64;
    println!(
        "quiescent cross-check: census {} B vs gauge {} B",
        quiet.live_bytes, gauge
    );
    assert_eq!(
        quiet.live_bytes, gauge,
        "census side-metadata total disagrees with the live-bytes gauge"
    );

    // ------------------------------------------------------------------
    // 3. Artifacts: census JSON + Prometheus, flight-recorder dump.
    // ------------------------------------------------------------------
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(dir.join("e15_census_snapshot.json"), quiet.to_json());
    let mut prom = mpl_obs::PromWriter::new();
    quiet.write_prometheus(&mut prom);
    let _ = std::fs::write(dir.join("e15_census.prom"), prom.finish());
    let flight = mpl_obs::flight_snapshot();
    let _ = std::fs::write(dir.join("e15_flight.bin"), mpl_obs::flight_encode(&flight));
    println!(
        "artifacts: census snapshot + prom families, flight dump with {} events",
        flight.len()
    );
    assert!(
        !flight.is_empty(),
        "the run's GC epilogues and spans must have fed the flight ring"
    );
    drop(rt);

    // ------------------------------------------------------------------
    // 4. Suite overhead with the census-era telemetry enabled.
    // ------------------------------------------------------------------
    let mut overhead_table = Table::new(&["benchmark", "T off", "T on", "overhead"]);
    let mut overhead_rows = Vec::new();
    let mut overheads = Vec::new();
    for bench in mpl_bench_suite::all() {
        if bench.entangled() {
            continue;
        }
        let n = scale_bench(bench.as_ref());
        let mut off = Vec::with_capacity(reps);
        let mut on = Vec::with_capacity(reps);
        for _ in 0..reps {
            let base = run_mpl(bench.as_ref(), n, RuntimeConfig::managed());
            let tele = run_mpl(bench.as_ref(), n, RuntimeConfig::managed().with_telemetry());
            assert_eq!(base.checksum, tele.checksum, "{}", bench.name());
            off.push(base.wall);
            on.push(tele.wall);
        }
        let (t_off, t_on) = (median(&mut off), median(&mut on));
        let ovh = t_on.as_secs_f64() / t_off.as_secs_f64().max(1e-9) - 1.0;
        overheads.push(ovh);
        overhead_table.row(vec![
            bench.name().into(),
            fmt_dur(t_off),
            fmt_dur(t_on),
            format!("{:+.1}%", ovh * 100.0),
        ]);
        overhead_rows.push(OverheadRow {
            name: bench.name().into(),
            t_disabled_us: t_off.as_micros(),
            t_enabled_us: t_on.as_micros(),
            overhead: ovh,
        });
    }
    overheads.sort_by(f64::total_cmp);
    let median_overhead = overheads[overheads.len() / 2];
    println!("\nsuite overhead, telemetry+census off vs on (median of {reps} reps):");
    print!("{}", overhead_table.render());
    println!("suite median overhead: {:+.1}%", median_overhead * 100.0);

    write_json(
        "e15_census",
        &E15 {
            smoke,
            reps,
            census_objects: census.objects(),
            census_ns,
            census_live_bytes: quiet.live_bytes,
            gauge_live_bytes: gauge,
            pinned_at_capture: census.pinned_objects(),
            fragmentation: census.fragmentation(),
            provenance_recorded: prov.recorded,
            provenance_retained: prov.retained,
            provenance_mean_depth_gap: prov.mean_depth_gap,
            overhead: overhead_rows,
            median_overhead,
            flight_events: flight.len(),
        },
    );
    println!(
        "wrote results/e15_census.json, results/e15_census_snapshot.json, \
         results/e15_census.prom, results/e15_flight.bin"
    );
}
