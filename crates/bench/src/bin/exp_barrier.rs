//! E7 — Barrier microbenchmarks: per-operation cost of the entanglement
//! machinery (the paper's "constant-time barrier" claim), in ns/op:
//!
//! * local mutable read, barrier on vs off
//! * entangled read of an already-pinned object (steady state)
//! * the first entangled read (pin CAS + index insert)
//! * down-pointer write (remembered-set insert)
//! * raw-array read (never barriered)

use std::time::Instant;

use mpl_bench::{write_json, Table};
use mpl_runtime::{GcPolicy, Runtime, RuntimeConfig, Value};
use serde::Serialize;

const ITERS: usize = 1_000_000;

#[derive(Serialize)]
struct Row {
    op: String,
    ns_per_op: f64,
}

fn bench_op(name: &str, rows: &mut Vec<Row>, table: &mut Table, mut f: impl FnMut()) {
    // Warmup.
    for _ in 0..1000 {
        f();
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
    table.row(vec![name.to_string(), format!("{ns:.1}")]);
    rows.push(Row {
        op: name.to_string(),
        ns_per_op: ns,
    });
}

fn main() {
    println!("E7: barrier/pin microbenchmarks ({ITERS} iterations each)\n");
    let mut table = Table::new(&["operation", "ns/op"]);
    let mut rows = Vec::new();
    let nogc = RuntimeConfig::managed().with_policy(GcPolicy::disabled());

    // Local reads, barrier on.
    let rt = Runtime::new(nogc);
    rt.run(|m| {
        let r = m.alloc_ref(Value::Int(1));
        bench_op("read_ref local (barrier)", &mut rows, &mut table, || {
            std::hint::black_box(m.read_ref(r));
        });
        let t = m.alloc_tuple(&[Value::Int(1)]);
        bench_op("tuple_get (no barrier)", &mut rows, &mut table, || {
            std::hint::black_box(m.tuple_get(t, 0));
        });
        let raw = m.alloc_raw(4);
        bench_op("raw_get (no barrier)", &mut rows, &mut table, || {
            std::hint::black_box(m.raw_get(raw, 0));
        });
        bench_op("write_ref local", &mut rows, &mut table, || {
            m.write_ref(r, Value::Int(2));
        });
        Value::Unit
    });

    // Barrier off.
    let rt = Runtime::new(RuntimeConfig::no_barrier().with_policy(GcPolicy::disabled()));
    rt.run(|m| {
        let r = m.alloc_ref(Value::Int(1));
        bench_op("read_ref local (no barrier)", &mut rows, &mut table, || {
            std::hint::black_box(m.read_ref(r));
        });
        Value::Unit
    });

    // Entangled steady-state read: a cell holding a sibling allocation,
    // read repeatedly after the pin exists.
    let rt = Runtime::new(nogc);
    rt.run(|m| {
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);
        m.fork(
            |m| {
                let boxed = m.alloc_tuple(&[Value::Int(7)]);
                m.write_ref(m.get(&c), boxed);
                Value::Unit
            },
            |m| {
                // First read pins; measure both the pin and steady state.
                let cell = m.get(&c);
                let start = Instant::now();
                std::hint::black_box(m.read_ref(cell));
                let first = start.elapsed().as_nanos() as f64;
                table.row(vec![
                    "entangled read, first (pin)".into(),
                    format!("{first:.1}"),
                ]);
                rows.push(Row {
                    op: "entangled read, first (pin)".into(),
                    ns_per_op: first,
                });
                bench_op("entangled read, steady", &mut rows, &mut table, || {
                    let cell = m.get(&c);
                    std::hint::black_box(m.read_ref(cell));
                });
                Value::Unit
            },
        );
        Value::Unit
    });

    // Down-pointer writes (remset insert per write).
    let rt = Runtime::new(nogc);
    rt.run(|m| {
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);
        m.fork(
            |m| {
                let boxed = m.alloc_tuple(&[Value::Int(1)]);
                let bh = m.root(boxed);
                bench_op(
                    "write_ref down-pointer (remset)",
                    &mut rows,
                    &mut table,
                    || {
                        let cell = m.get(&c);
                        let boxed = m.get(&bh);
                        m.write_ref(cell, boxed);
                    },
                );
                Value::Unit
            },
            |_| Value::Unit,
        );
        Value::Unit
    });

    print!("{}", table.render());
    write_json("e7_barrier", &rows);
    println!("\nwrote results/e7_barrier.json");
}
