//! E7 — Barrier microbenchmarks: per-operation cost of the entanglement
//! machinery (the paper's "constant-time barrier" claim), in ns/op:
//!
//! * local mutable read, barrier on vs off
//! * entangled read of an already-pinned object (steady state)
//! * the first entangled read (pin CAS + index insert)
//! * down-pointer write (remembered-set insert)
//! * raw-array read (never barriered)
//!
//! Each row also reports how the timed iterations split across the
//! barrier's tiers (`fast`/`slow` — see `mpl-runtime`'s barrier module):
//! the disentangled ops must report **zero** slow-tier entries, which is
//! the measurable form of "no lock acquisitions, no Arc clones".

use std::time::Instant;

use mpl_bench::{write_json, Table};
use mpl_runtime::{GcPolicy, Mutator, Runtime, RuntimeConfig, StatsSnapshot, Value};
use serde::Serialize;

const ITERS: usize = 1_000_000;

#[derive(Serialize)]
struct Row {
    op: String,
    ns_per_op: f64,
    /// Fast-tier barrier entries (reads + writes) during the timed loop.
    fast_ops: u64,
    /// Slow-tier barrier entries during the timed loop.
    slow_ops: u64,
}

fn snapshot(m: &mut Mutator<'_>) -> StatsSnapshot {
    m.sync_stats();
    m.runtime().stats()
}

/// Barrier-tier entries (fast, slow) between two snapshots.
fn tier_delta(after: &StatsSnapshot, before: &StatsSnapshot) -> (u64, u64) {
    let d = after.delta(before);
    (
        d.barrier_read_fast + d.barrier_write_fast,
        d.barrier_read_slow + d.barrier_write_slow,
    )
}

fn push_row(rows: &mut Vec<Row>, table: &mut Table, op: &str, ns: f64, fast: u64, slow: u64) {
    table.row(vec![
        op.to_string(),
        format!("{ns:.1}"),
        fast.to_string(),
        slow.to_string(),
    ]);
    rows.push(Row {
        op: op.to_string(),
        ns_per_op: ns,
        fast_ops: fast,
        slow_ops: slow,
    });
}

fn bench_op(
    name: &str,
    rows: &mut Vec<Row>,
    table: &mut Table,
    m: &mut Mutator<'_>,
    mut f: impl FnMut(&mut Mutator<'_>),
) {
    // Warmup.
    for _ in 0..1000 {
        f(m);
    }
    let before = snapshot(m);
    // Min-of-batches timing: the fastest batch damps page-fault and
    // scheduler noise, which single-shot 1M-iteration runs are exposed
    // to (the CI regression gate needs stable numbers).
    const BATCHES: usize = 10;
    let per_batch = ITERS / BATCHES;
    let mut ns = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..per_batch {
            f(m);
        }
        ns = ns.min(start.elapsed().as_nanos() as f64 / per_batch as f64);
    }
    let (fast, slow) = tier_delta(&snapshot(m), &before);
    push_row(rows, table, name, ns, fast, slow);
}

fn main() {
    println!("E7: barrier/pin microbenchmarks ({ITERS} iterations each)\n");
    let mut table = Table::new(&["operation", "ns/op", "fast", "slow"]);
    let mut rows = Vec::new();
    let nogc = RuntimeConfig::managed().with_policy(GcPolicy::disabled());

    // Local reads, barrier on.
    let rt = Runtime::new(nogc);
    rt.run(|m| {
        let r = m.alloc_ref(Value::Int(1));
        bench_op("read_ref local (barrier)", &mut rows, &mut table, m, |m| {
            std::hint::black_box(m.read_ref(r));
        });
        let t = m.alloc_tuple(&[Value::Int(1)]);
        bench_op("tuple_get (no barrier)", &mut rows, &mut table, m, |m| {
            std::hint::black_box(m.tuple_get(t, 0));
        });
        let raw = m.alloc_raw(4);
        bench_op("raw_get (no barrier)", &mut rows, &mut table, m, |m| {
            std::hint::black_box(m.raw_get(raw, 0));
        });
        bench_op("write_ref local", &mut rows, &mut table, m, |m| {
            m.write_ref(r, Value::Int(2));
        });
        Value::Unit
    });

    // Barrier off.
    let rt = Runtime::new(RuntimeConfig::no_barrier().with_policy(GcPolicy::disabled()));
    rt.run(|m| {
        let r = m.alloc_ref(Value::Int(1));
        bench_op(
            "read_ref local (no barrier)",
            &mut rows,
            &mut table,
            m,
            |m| {
                std::hint::black_box(m.read_ref(r));
            },
        );
        Value::Unit
    });

    // Entangled steady-state read: a cell holding a sibling allocation,
    // read repeatedly after the pin exists.
    let rt = Runtime::new(nogc);
    rt.run(|m| {
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);
        m.fork(
            |m| {
                let boxed = m.alloc_tuple(&[Value::Int(7)]);
                m.write_ref(m.get(&c), boxed);
                Value::Unit
            },
            |m| {
                // First read pins; measure both the pin and steady state.
                let cell = m.get(&c);
                let before = snapshot(m);
                let start = Instant::now();
                std::hint::black_box(m.read_ref(cell));
                let first = start.elapsed().as_nanos() as f64;
                let (fast, slow) = tier_delta(&snapshot(m), &before);
                push_row(
                    &mut rows,
                    &mut table,
                    "entangled read, first (pin)",
                    first,
                    fast,
                    slow,
                );
                bench_op("entangled read, steady", &mut rows, &mut table, m, |m| {
                    let cell = m.get(&c);
                    std::hint::black_box(m.read_ref(cell));
                });
                Value::Unit
            },
        );
        Value::Unit
    });

    // Down-pointer writes (remset insert per write).
    let rt = Runtime::new(nogc);
    rt.run(|m| {
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);
        m.fork(
            |m| {
                let boxed = m.alloc_tuple(&[Value::Int(1)]);
                let bh = m.root(boxed);
                bench_op(
                    "write_ref down-pointer (remset)",
                    &mut rows,
                    &mut table,
                    m,
                    |m| {
                        let cell = m.get(&c);
                        let boxed = m.get(&bh);
                        m.write_ref(cell, boxed);
                    },
                );
                Value::Unit
            },
            |_| Value::Unit,
        );
        Value::Unit
    });

    print!("{}", table.render());
    write_json("e7_barrier", &rows);
    println!("\nwrote results/e7_barrier.json");
}
