//! E16 — Cooperative cancellation & deadlines: bounded unwind latency,
//! the disabled cost of the poll points, and deadline-driven overload
//! behaviour in mpl-serve.
//!
//! Three measurements:
//!
//! * **Cancel-to-unwound latency vs tree depth** — a binary fork tree of
//!   depth 2/4/6/8 whose leaves spin allocating fresh garbage forever is
//!   run under a short `try_run_deadline`. Every cancelled run records
//!   one `Metric::CancelUnwind` sample (token trip → run fully
//!   unwound); per depth we report p50/p99/max over the batch. The
//!   claim: cancellation latency is bounded by the poll interval plus
//!   join/merge work, so p99 stays around a millisecond even at depth 8
//!   (2^8 = 256 spinning leaves).
//! * **Disabled cost** — the disentangled suite, plain `try_run` vs
//!   `try_run_deadline` with a deadline that never fires (one hour).
//!   The deadline arms the token and every allocation poll point, so
//!   this prices the machinery when nothing cancels; the delta must be
//!   within noise (the poll is one relaxed load on the allocation slow
//!   path).
//! * **Serve overload sweep** — the three-tenant mix with a
//!   deliberately strict per-request timeout on the batch tenant,
//!   driven at increasing offered rates. Reports per-tenant timeouts,
//!   retries, breaker opens, breaker/brownout sheds and degraded
//!   serves; the strict tenant's breaker must open under its own
//!   timeouts while the untimed web tenant keeps completing.
//!
//! `--smoke` runs single repetitions and one sweep rate; `MPL_SCALE`
//! scales the full suite sizes as usual.

use std::time::{Duration, Instant};

use mpl_bench::{fmt_dur, scale_bench, write_json, Table};
use mpl_runtime::{CancelReason, Cancelled, Mutator, RunError, Runtime, RuntimeConfig, Value};
use mpl_serve::{ArrivalProcess, Profile, Server, TenantSpec, TrafficConfig};
use serde::Serialize;

const SEED: u64 = 0x0e16_5eed;

#[derive(Serialize)]
struct DepthRow {
    depth: u32,
    cancelled_runs: u64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

#[derive(Serialize)]
struct CostRow {
    name: String,
    t_plain_us: u128,
    t_deadline_us: u128,
    delta: f64,
}

#[derive(Serialize)]
struct OverloadRow {
    rate_hz: f64,
    offered: usize,
    completed: u64,
    web_p99_us: f64,
    timed_out: u64,
    retried: u64,
    breaker_opens: u64,
    breaker_shed: u64,
    brownout_shed: u64,
    degraded: u64,
}

#[derive(Serialize)]
struct E16 {
    smoke: bool,
    reps: usize,
    latency: Vec<DepthRow>,
    worst_p99_ns: u64,
    cost: Vec<CostRow>,
    median_deadline_delta: f64,
    overload: Vec<OverloadRow>,
    lgc_dead_traced: u64,
    audit_failures: u64,
}

fn median(xs: &mut [Duration]) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

/// A binary fork tree whose leaves allocate fresh garbage forever. Only
/// a cancellation ends it: the allocation poll points trip the deadline
/// and the `Cancelled` unwind joins every spinning sibling.
fn spin_tree(m: &mut Mutator<'_>, depth: u32) -> Value {
    if depth == 0 {
        loop {
            let v = m.alloc_ref(Value::Int(1));
            std::hint::black_box(&v);
        }
    }
    m.fork(|m| spin_tree(m, depth - 1), |m| spin_tree(m, depth - 1));
    Value::Unit
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 2 } else { 5 };
    mpl_fail::init_from_env();
    // Thousands of runs below end by design in a `Cancelled` unwind;
    // keep those off stderr but let real panics report normally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<Cancelled>().is_none() {
            default_hook(info);
        }
    }));
    println!(
        "E16: cancellation — unwind latency, disabled cost, serve overload{}\n",
        if smoke { " (smoke)" } else { "" }
    );
    let audit0 = mpl_gc::audit::counters();

    // ------------------------------------------------------------------
    // 1. Cancel-to-unwound latency vs fork-tree depth.
    // ------------------------------------------------------------------
    let cancels_per_depth: u64 = if smoke { 8 } else { 40 };
    let mut latency_table = Table::new(&["depth", "leaves", "cancels", "p50", "p99", "max"]);
    let mut latency_rows = Vec::new();
    let mut worst_p99 = 0u64;
    for &depth in &[2u32, 4, 6, 8] {
        let rt = Runtime::new(
            RuntimeConfig::managed()
                .with_threads_exact(4)
                .with_telemetry(),
        );
        // One uncounted warmup cancel: the first run pays worker spin-up,
        // which is not unwind latency.
        let _ = rt
            .try_run_deadline(Duration::from_micros(500), |m| spin_tree(m, depth))
            .expect_err("warmup run must also be cancelled");
        mpl_obs::histogram(mpl_obs::Metric::CancelUnwind).reset();
        for _ in 0..cancels_per_depth {
            let err = rt
                .try_run_deadline(Duration::from_micros(500), |m| spin_tree(m, depth))
                .expect_err("a spinning tree can only end by cancellation");
            match err {
                RunError::Cancelled(c) => assert_eq!(c.reason, CancelReason::Deadline),
                other => panic!("unexpected run error: {other:?}"),
            }
        }
        let h = mpl_obs::histogram(mpl_obs::Metric::CancelUnwind).snapshot();
        assert_eq!(
            h.count, cancels_per_depth,
            "every cancelled run records exactly one unwind-latency sample"
        );
        rt.assert_heap_sound();
        assert_eq!(rt.stats().pinned_bytes, 0, "depth {depth}: leaked pins");
        worst_p99 = worst_p99.max(h.p99());
        latency_table.row(vec![
            depth.to_string(),
            (1u64 << depth).to_string(),
            h.count.to_string(),
            fmt_dur(Duration::from_nanos(h.p50())),
            fmt_dur(Duration::from_nanos(h.p99())),
            fmt_dur(Duration::from_nanos(h.max)),
        ]);
        latency_rows.push(DepthRow {
            depth,
            cancelled_runs: h.count,
            p50_ns: h.p50(),
            p99_ns: h.p99(),
            max_ns: h.max,
        });
    }
    println!("cancel-to-unwound latency ({cancels_per_depth} cancelled runs per depth):");
    print!("{}", latency_table.render());
    // Generous in-binary bound (CI runs this in debug under chaos); the
    // recorded JSON carries the real release numbers for EXPERIMENTS.md.
    assert!(
        worst_p99 < 50_000_000,
        "cancel-to-unwound p99 {worst_p99} ns — unwinding is not bounded"
    );

    // ------------------------------------------------------------------
    // 2. Disabled cost: plain try_run vs an armed never-firing deadline.
    // ------------------------------------------------------------------
    let mut cost_table = Table::new(&["benchmark", "T plain", "T deadline", "delta"]);
    let mut cost_rows = Vec::new();
    let mut deltas = Vec::new();
    for bench in mpl_bench_suite::all() {
        if bench.entangled() {
            continue;
        }
        let n = scale_bench(bench.as_ref());
        let (mut plain, mut armed) = (Vec::new(), Vec::new());
        for _ in 0..reps {
            let rt = Runtime::new(RuntimeConfig::managed());
            let t = Instant::now();
            let a = rt
                .try_run(|m| Value::Int(bench.run_mpl(m, n)))
                .expect("suite benchmark")
                .expect_int();
            plain.push(t.elapsed());
            drop(rt);
            let rt = Runtime::new(RuntimeConfig::managed());
            let t = Instant::now();
            let b = rt
                .try_run_deadline(Duration::from_secs(3600), |m| {
                    Value::Int(bench.run_mpl(m, n))
                })
                .expect("the one-hour deadline never fires")
                .expect_int();
            armed.push(t.elapsed());
            assert_eq!(a, b, "{}", bench.name());
        }
        let (t_plain, t_armed) = (median(&mut plain), median(&mut armed));
        let delta = t_armed.as_secs_f64() / t_plain.as_secs_f64().max(1e-9) - 1.0;
        deltas.push(delta);
        cost_table.row(vec![
            bench.name().into(),
            fmt_dur(t_plain),
            fmt_dur(t_armed),
            format!("{:+.1}%", delta * 100.0),
        ]);
        cost_rows.push(CostRow {
            name: bench.name().into(),
            t_plain_us: t_plain.as_micros(),
            t_deadline_us: t_armed.as_micros(),
            delta,
        });
    }
    deltas.sort_by(f64::total_cmp);
    let median_deadline_delta = deltas[deltas.len() / 2];
    println!("\narmed-deadline cost (disentangled suite, median of {reps} interleaved reps):");
    print!("{}", cost_table.render());
    println!(
        "suite median delta: {:+.1}%\n",
        median_deadline_delta * 100.0
    );

    // ------------------------------------------------------------------
    // 3. Serve overload sweep: strict timeouts, retries, breaker,
    //    brownout under increasing offered load.
    // ------------------------------------------------------------------
    let rates: Vec<f64> = if smoke {
        vec![600.0]
    } else {
        vec![500.0, 1500.0, 4000.0]
    };
    let dur_s: f64 = if smoke { 1.5 } else { 8.0 };
    let mut overload_table = Table::new(&[
        "rate",
        "offered",
        "completed",
        "p99(web)",
        "timeouts",
        "retries",
        "brk-open",
        "brk-shed",
        "brownout",
        "degraded",
    ]);
    let mut overload_rows = Vec::new();
    let mut dead = 0u64;
    for &rate in &rates {
        let rt = Runtime::new(RuntimeConfig::managed().with_telemetry().with_audit());
        let mut srv = Server::new(
            &rt,
            vec![
                TenantSpec::new("web", 8 << 20).cache_slots(128),
                TenantSpec::new("feed", 8 << 20)
                    .profile(Profile::Entangled)
                    .timeout(Duration::from_millis(5))
                    .retries(1)
                    .backoff(Duration::from_micros(50)),
                // The strict tenant: a timeout below any real request's
                // service time, one retry, tight backoff. Every request
                // times out, the retry times out again, the breaker
                // opens — the deadline-storm and breaker paths are the
                // thing under test.
                TenantSpec::new("strict", 16 << 20)
                    .payload_scale(4)
                    .timeout(Duration::from_nanos(1))
                    .retries(1)
                    .backoff(Duration::from_micros(20)),
            ],
        );
        let rep = srv.run(&TrafficConfig {
            seed: SEED,
            rate_hz: rate,
            requests: (rate * dur_s) as usize,
            process: ArrivalProcess::Poisson,
            tenants: 3,
            sessions_per_tenant: 2,
            ..TrafficConfig::default()
        });
        rt.assert_heap_sound();
        srv.shutdown();
        dead += rep.gc.lgc_dead_traced;
        let web = &rep.tenants[0];
        let strict = &rep.tenants[2];
        assert!(
            strict.timed_out > 0,
            "rate {rate}: the 1 ns timeout must fire"
        );
        assert!(
            strict.breaker_opens > 0,
            "rate {rate}: consecutive timeouts must open the breaker"
        );
        assert!(
            web.completed > 0,
            "rate {rate}: the untimed tenant keeps completing"
        );
        let (timed_out, retried, brk_open, brk_shed, brownout, degraded) =
            rep.tenants.iter().fold((0, 0, 0, 0, 0, 0), |acc, t| {
                (
                    acc.0 + t.timed_out,
                    acc.1 + t.retried,
                    acc.2 + t.breaker_opens,
                    acc.3 + t.breaker_shed,
                    acc.4 + t.brownout_shed,
                    acc.5 + t.degraded,
                )
            });
        println!("-- rate {rate} rps --");
        println!("{}", rep.render_table());
        overload_table.row(vec![
            format!("{rate:.0}"),
            rep.offered.to_string(),
            rep.completed_total.to_string(),
            format!("{:.1}µs", web.p99_ns as f64 / 1e3),
            timed_out.to_string(),
            retried.to_string(),
            brk_open.to_string(),
            brk_shed.to_string(),
            brownout.to_string(),
            degraded.to_string(),
        ]);
        overload_rows.push(OverloadRow {
            rate_hz: rate,
            offered: rep.offered,
            completed: rep.completed_total,
            web_p99_us: web.p99_ns as f64 / 1e3,
            timed_out,
            retried,
            breaker_opens: brk_open,
            breaker_shed: brk_shed,
            brownout_shed: brownout,
            degraded,
        });
    }
    println!("E16c: overload sweep (seed {SEED:#x}, strict tenant timeout 1 ns):");
    print!("{}", overload_table.render());

    let audit1 = mpl_gc::audit::counters();
    let payload = E16 {
        smoke,
        reps,
        latency: latency_rows,
        worst_p99_ns: worst_p99,
        cost: cost_rows,
        median_deadline_delta,
        overload: overload_rows,
        lgc_dead_traced: dead,
        audit_failures: audit1.failures - audit0.failures,
    };
    assert_eq!(payload.lgc_dead_traced, 0, "corruption canary");
    assert_eq!(payload.audit_failures, 0, "phase audits");
    write_json("e16_cancel", &payload);
    println!("\nwrote results/e16_cancel.json");
}
