//! E6 — Cross-runtime comparison on the shared benchmark set (the paper's
//! "competitive with C++, Go, Java, OCaml" table):
//!
//! * native Rust (no GC)            — the C++/Go stand-in
//! * managed hierarchical runtime   — this paper
//! * global-heap stop-the-world GC  — the Java/OCaml stand-in

use mpl_bench::{fmt_dur, run_global, run_mpl, run_native, scale_bench, write_json, Table};
use mpl_runtime::RuntimeConfig;
use serde::Serialize;

const SET: &[&str] = &[
    "msort",
    "primes",
    "tokens",
    "nqueens",
    "bfs",
    "dedup",
    "unionfind",
];

#[derive(Serialize)]
struct Row {
    name: String,
    t_native_us: u128,
    t_mpl_us: u128,
    t_global_us: u128,
    mpl_vs_native: f64,
    mpl_vs_global: f64,
    global_gc_pause_us: u128,
    global_alloc_locks: u64,
}

fn main() {
    println!("E6: cross-runtime comparison (native / managed-hierarchical / global-GC)\n");
    let mut table = Table::new(&[
        "benchmark",
        "native",
        "mpl",
        "global-gc",
        "mpl/native",
        "mpl/global",
        "gc pauses",
        "alloc locks",
    ]);
    let mut rows = Vec::new();
    for name in SET {
        let bench = mpl_bench_suite::by_name(name).expect("known benchmark");
        let n = scale_bench(bench.as_ref());
        let (cn, tn) = run_native(bench.as_ref(), n);
        let mpl = run_mpl(bench.as_ref(), n, RuntimeConfig::managed());
        let (cg, tg, gs) =
            run_global(bench.as_ref(), n, 1).expect("comparison set supports global");
        assert_eq!(mpl.checksum, cn, "{name}: mpl checksum");
        assert_eq!(cg, cn, "{name}: global checksum");
        table.row(vec![
            name.to_string(),
            fmt_dur(tn),
            fmt_dur(mpl.wall),
            fmt_dur(tg),
            format!(
                "{:.1}x",
                mpl.wall.as_secs_f64() / tn.as_secs_f64().max(1e-9)
            ),
            format!(
                "{:.2}x",
                mpl.wall.as_secs_f64() / tg.as_secs_f64().max(1e-9)
            ),
            fmt_dur(gs.gc_pause),
            gs.alloc_locks.to_string(),
        ]);
        rows.push(Row {
            name: name.to_string(),
            t_native_us: tn.as_micros(),
            t_mpl_us: mpl.wall.as_micros(),
            t_global_us: tg.as_micros(),
            mpl_vs_native: mpl.wall.as_secs_f64() / tn.as_secs_f64().max(1e-9),
            mpl_vs_global: mpl.wall.as_secs_f64() / tg.as_secs_f64().max(1e-9),
            global_gc_pause_us: gs.gc_pause.as_micros(),
            global_alloc_locks: gs.alloc_locks,
        });
    }
    print!("{}", table.render());
    write_json("e6_langcmp", &rows);
    println!("\nwrote results/e6_langcmp.json");
    println!("\nNote: every managed-runtime allocation here is lock-free; the");
    println!("global-GC column pays one lock acquisition per allocation.");
}
