//! E8 — Cost-metric validation against the formal semantics: runs the
//! calculus programs under several schedules, reports the paper's cost
//! metrics (work, span, entangled accesses, pins, max pinned set,
//! entanglement footprint), and checks the bounds the paper proves:
//!
//! * footprint ≥ pinned set at all times (space bound is conservative);
//! * pure programs have zero entanglement cost under every schedule;
//! * all pins are released by the final join.

use mpl_bench::{write_json, Table};
use mpl_lang::{examples, run_program, LangMode, Options, Schedule};
use mpl_runtime::{Runtime, RuntimeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    program: String,
    schedule: String,
    steps: u64,
    span: u64,
    entangled_reads: u64,
    entangled_writes: u64,
    pins: u64,
    unpins: u64,
    max_pinned: u64,
    max_footprint: u64,
}

fn main() {
    println!("E8: formal cost metrics (λ-par-ref semantics) and bound checks\n");
    let mut table = Table::new(&[
        "program",
        "schedule",
        "work",
        "span",
        "ent.reads",
        "pins",
        "max pinned",
        "footprint",
    ]);
    let mut rows = Vec::new();
    let schedules: &[(&str, Schedule)] = &[
        ("depth-first", Schedule::DepthFirst),
        ("round-robin", Schedule::RoundRobin),
        ("random(7)", Schedule::Random(7)),
    ];
    for (name, src) in examples::ALL {
        for (sname, schedule) in schedules {
            let out = run_program(
                src,
                Options {
                    schedule: *schedule,
                    mode: LangMode::Managed,
                    fuel: 50_000_000,
                },
            )
            .unwrap_or_else(|e| panic!("{name}/{sname}: {e}"));
            let c = out.costs;
            // Bound checks (the paper's invariants):
            assert!(c.max_footprint >= c.max_pinned, "{name}: footprint bound");
            assert!(
                out.store.pinned_locs().is_empty(),
                "{name}: pins must clear by the end"
            );
            if !examples::is_entangled(name) {
                assert_eq!(c.pins, 0, "{name}: pure programs never pin");
            }
            table.row(vec![
                name.to_string(),
                sname.to_string(),
                c.steps.to_string(),
                c.span.to_string(),
                c.entangled_reads.to_string(),
                c.pins.to_string(),
                c.max_pinned.to_string(),
                c.max_footprint.to_string(),
            ]);
            rows.push(Row {
                program: name.to_string(),
                schedule: sname.to_string(),
                steps: c.steps,
                span: c.span,
                entangled_reads: c.entangled_reads,
                entangled_writes: c.entangled_writes,
                pins: c.pins,
                unpins: c.unpins,
                max_pinned: c.max_pinned,
                max_footprint: c.max_footprint,
            });
        }
    }
    print!("{}", table.render());

    // Part 2: formal semantics vs the compiled pipeline on the managed
    // runtime — results and entanglement metrics must agree exactly
    // under the deterministic schedule.
    println!("\nsemantics vs compiled-on-runtime (depth-first):\n");
    let mut t2 = Table::new(&[
        "program",
        "result (sem)",
        "result (compiled)",
        "ent.reads sem/rt",
        "pins sem/rt",
    ]);
    for (name, src) in examples::ALL {
        let sem = run_program(
            src,
            Options {
                schedule: Schedule::DepthFirst,
                mode: LangMode::Managed,
                fuel: 50_000_000,
            },
        )
        .expect("semantics run");
        let rt = Runtime::new(RuntimeConfig::managed());
        let compiled = mpl_compile::run_source(&rt, src, 50_000_000).expect("compiled run");
        let stats = rt.stats();
        assert_eq!(sem.render(), compiled.rendered, "{name}: results agree");
        assert_eq!(
            stats.entangled_reads, sem.costs.entangled_reads,
            "{name}: entangled-read counts agree"
        );
        assert_eq!(stats.pins, sem.costs.pins, "{name}: pin counts agree");
        t2.row(vec![
            name.to_string(),
            sem.render(),
            compiled.rendered.clone(),
            format!("{}/{}", sem.costs.entangled_reads, stats.entangled_reads),
            format!("{}/{}", sem.costs.pins, stats.pins),
        ]);
    }
    print!("{}", t2.render());

    // Futures extension: the same cost metrics and bounds over the
    // semantics-only examples (the compiled backend is fork-join only).
    println!("\nfutures extension (semantics level):");
    let mut t3 = Table::new(&[
        "program",
        "schedule",
        "result",
        "futures",
        "touches",
        "ent.reads",
        "pins",
        "max footprint",
    ]);
    for (name, src) in mpl_lang::examples::SEMANTICS_ONLY {
        for (sname, schedule) in schedules {
            let out = run_program(
                src,
                Options {
                    schedule: *schedule,
                    mode: LangMode::Managed,
                    fuel: 50_000_000,
                },
            )
            .unwrap_or_else(|e| panic!("{name}/{sname}: {e}"));
            let c = out.costs;
            assert!(c.max_footprint >= c.max_pinned, "{name}: footprint bound");
            assert!(
                out.store.pinned_locs().is_empty(),
                "{name}: futures pins must clear by the end"
            );
            assert_eq!(c.pins, c.unpins, "{name}: pins = unpins with futures");
            t3.row(vec![
                name.to_string(),
                sname.to_string(),
                out.render(),
                c.futures.to_string(),
                c.touches.to_string(),
                c.entangled_reads.to_string(),
                c.pins.to_string(),
                c.max_footprint.to_string(),
            ]);
        }
    }
    print!("{}", t3.render());

    write_json("e8_bounds", &rows);
    println!("\nwrote results/e8_bounds.json");
    println!("\nAll bound checks passed: footprint >= pinned set, pure programs");
    println!("never pin, every pin is released by the final join, and the");
    println!("compiled pipeline reproduces the formal semantics' entanglement");
    println!("metrics exactly.");
}
