//! E4 — Space: maximum residency of the managed runtime vs the sequential
//! baseline (`R_1/R_s`), plus the pinned-footprint high-water mark that
//! bounds entanglement's extra space (the paper's space-cost claim).

use mpl_bench::{fmt_bytes, run_mpl, run_seq, scale_bench, write_json, Table};
use mpl_runtime::{GcPolicy, RuntimeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    entangled: bool,
    r_seq: usize,
    r_mpl: usize,
    blowup: f64,
    max_pinned: usize,
    pinned_share: f64,
}

fn main() {
    println!("E4: max residency and pinned footprint\n");
    let mut table = Table::new(&[
        "benchmark",
        "class",
        "R_s",
        "R_1",
        "R_1/R_s",
        "R_3thr",
        "peak pinned",
        "pinned/R_1",
    ]);
    // Equal collection aggressiveness on both runtimes.
    let policy = GcPolicy {
        lgc_trigger_bytes: 256 * 1024,
        cgc_trigger_pinned_bytes: 128 * 1024,
        immediate_block_free: true,
    };
    let mut rows = Vec::new();
    for bench in mpl_bench_suite::all() {
        let n = scale_bench(bench.as_ref());
        let seq = run_seq(bench.as_ref(), n);
        let cfg = RuntimeConfig::managed().with_policy(policy);
        let mpl = run_mpl(bench.as_ref(), n, cfg);
        assert_eq!(mpl.checksum, seq.checksum, "{}", bench.name());
        // Residency with real concurrent tasks (3 threads): parallel
        // allocation raises the high-water mark, the R_P effect.
        let thr = run_mpl(
            bench.as_ref(),
            n,
            RuntimeConfig::managed().with_policy(policy).with_threads(3),
        );
        assert_eq!(thr.checksum, seq.checksum, "{} (threads)", bench.name());
        let r_s = seq.stats.max_live_bytes.max(1);
        let r_1 = mpl.stats.max_live_bytes;
        let blowup = r_1 as f64 / r_s as f64;
        let tiny = r_s < 1024 && r_1 < 1024; // no residency to speak of
        let share = mpl.stats.max_pinned_bytes as f64 / r_1.max(1) as f64;
        table.row(vec![
            bench.name().into(),
            if bench.entangled() { "ent" } else { "dis" }.into(),
            fmt_bytes(r_s),
            fmt_bytes(r_1),
            if tiny {
                "-".into()
            } else {
                format!("{blowup:.2}x")
            },
            fmt_bytes(thr.stats.max_live_bytes),
            fmt_bytes(mpl.stats.max_pinned_bytes),
            format!("{:.1}%", share * 100.0),
        ]);
        rows.push(Row {
            name: bench.name().into(),
            entangled: bench.entangled(),
            r_seq: r_s,
            r_mpl: r_1,
            blowup,
            max_pinned: mpl.stats.max_pinned_bytes,
            pinned_share: share,
        });
    }
    print!("{}", table.render());
    write_json("e4_space", &rows);
    println!("\nwrote results/e4_space.json");
    println!("\nNote: disentangled rows must show zero pinned bytes — the");
    println!("management machinery is free when unused (shielding claim).");
}
