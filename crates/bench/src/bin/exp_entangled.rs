//! E5 — The cost of entanglement management, separated by who pays:
//!
//! * **disentangled suite** — `Managed` vs `NoEntanglementBarrier`
//!   (unsafe): the barrier is the *only* cost; the table reports its
//!   overhead and confirms zero pins.
//! * **entangled suite** — `Managed` runs (with pin/unpin/CGC activity
//!   reported); `DetectOnly` (prior MPL) *aborts*, demonstrating why
//!   management is needed at all.

use mpl_bench::{fmt_bytes, fmt_dur, run_mpl, scale_bench, write_json, Table};
use mpl_runtime::{Runtime, RuntimeConfig, Value};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    entangled: bool,
    t_managed_us: u128,
    t_nobarrier_us: Option<u128>,
    barrier_overhead: Option<f64>,
    entangled_reads: u64,
    entangled_writes: u64,
    pins: u64,
    unpins: u64,
    max_pinned_bytes: usize,
    lgc_pause_ns_total: u64,
    lgc_pause_ns_max: u64,
    detect_only_aborts: bool,
}

fn main() {
    println!("E5: entanglement-management costs (barrier overhead; pin activity)\n");
    let mut table = Table::new(&[
        "benchmark",
        "class",
        "T managed",
        "T detect-only",
        "T no-barrier",
        "barrier ovh",
        "ent.reads",
        "pins",
        "unpins",
        "peak pinned",
        "CGC runs",
        "max LGC pause",
        "max CGC pause",
        "prior MPL",
    ]);
    let mut rows = Vec::new();
    for bench in mpl_bench_suite::all() {
        let n = scale_bench(bench.as_ref());
        let managed = run_mpl(bench.as_ref(), n, RuntimeConfig::managed());

        // The no-barrier runtime is only sound for disentangled programs.
        let (t_nb, ovh) = if !bench.entangled() {
            let nb = run_mpl(bench.as_ref(), n, RuntimeConfig::no_barrier());
            assert_eq!(nb.checksum, managed.checksum, "{}", bench.name());
            let ovh = managed.wall.as_secs_f64() / nb.wall.as_secs_f64().max(1e-9) - 1.0;
            (Some(nb.wall), Some(ovh))
        } else {
            (None, None)
        };

        // Prior MPL (DetectOnly): equal cost on disentangled programs...
        let t_detect = if !bench.entangled() {
            Some(run_mpl(bench.as_ref(), n, RuntimeConfig::detect_only()).wall)
        } else {
            None
        };
        // ...and an abort on the entangled suite.
        let aborts = if bench.entangled() {
            let rt = Runtime::new(RuntimeConfig::detect_only());
            // The abort is the expected outcome; keep its backtrace out of
            // the report.
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rt.run(|m| Value::Int(bench.run_mpl(m, n)))
            }))
            .is_err();
            std::panic::set_hook(hook);
            refused
        } else {
            false
        };

        table.row(vec![
            bench.name().into(),
            if bench.entangled() { "ent" } else { "dis" }.into(),
            fmt_dur(managed.wall),
            t_detect.map(fmt_dur).unwrap_or_else(|| "aborts".into()),
            t_nb.map(fmt_dur).unwrap_or_else(|| "unsound".into()),
            ovh.map(|o| format!("{:+.1}%", o * 100.0))
                .unwrap_or_else(|| "-".into()),
            managed.stats.entangled_reads.to_string(),
            managed.stats.pins.to_string(),
            managed.stats.unpins.to_string(),
            fmt_bytes(managed.stats.max_pinned_bytes),
            managed.stats.cgc_runs.to_string(),
            fmt_dur(std::time::Duration::from_nanos(
                managed.stats.lgc_pause_ns_max,
            )),
            fmt_dur(std::time::Duration::from_nanos(
                managed.stats.cgc_pause_ns_max,
            )),
            if bench.entangled() {
                if aborts { "aborts" } else { "??" }.into()
            } else {
                "ok".to_string()
            },
        ]);
        rows.push(Row {
            name: bench.name().into(),
            entangled: bench.entangled(),
            t_managed_us: managed.wall.as_micros(),
            t_nobarrier_us: t_nb.map(|d| d.as_micros()),
            barrier_overhead: ovh,
            entangled_reads: managed.stats.entangled_reads,
            entangled_writes: managed.stats.entangled_writes,
            pins: managed.stats.pins,
            unpins: managed.stats.unpins,
            max_pinned_bytes: managed.stats.max_pinned_bytes,
            lgc_pause_ns_total: managed.stats.lgc_pause_ns_total,
            lgc_pause_ns_max: managed.stats.lgc_pause_ns_max,
            detect_only_aborts: aborts,
        });
        // Invariants the paper proves, checked on every run:
        if !bench.entangled() {
            assert_eq!(
                managed.stats.pins,
                0,
                "{}: disentangled never pins",
                bench.name()
            );
        }
        assert_eq!(
            managed.stats.pinned_bytes,
            0,
            "{}: all pins resolve by program end",
            bench.name()
        );
    }
    print!("{}", table.render());
    write_json("e5_entangled", &rows);

    // Addendum: CGC pause times. At full scale the default trigger (1 MiB
    // of pinned footprint, with doubling amortization) rarely fires; run
    // the pin-heaviest benchmarks under a CGC-pressure policy so the
    // concurrent collector's pause profile is visible.
    println!("\nCGC pause profile (cgc trigger = 64 KiB pinned):");
    let mut pause = Table::new(&[
        "benchmark",
        "threads",
        "slice",
        "CGC runs",
        "swept",
        "total pause",
        "max pause",
        "peak pinned",
    ]);
    // msqueue needs the real-thread executor here: under the sequential
    // schedule its consumer is a non-allocating loop, so no safepoint
    // falls inside the pin-growth phase (CGC is safepoint-based; see
    // DESIGN.md, decision 8). Each benchmark also runs with incremental
    // (sliced) cycles, the bounded-pause configuration.
    for (name, threads) in [("dedup", 1), ("bfs", 1), ("msqueue", 2)] {
        for slice in [0usize, 512] {
            let bench = mpl_bench_suite::by_name(name).expect("known benchmark");
            let n = scale_bench(bench.as_ref());
            let mut cfg = RuntimeConfig::managed()
                .with_threads(threads)
                .with_cgc_slice(slice);
            cfg.policy.cgc_trigger_pinned_bytes = 64 * 1024;
            let out = run_mpl(bench.as_ref(), n, cfg);
            pause.row(vec![
                name.into(),
                threads.to_string(),
                if slice == 0 {
                    "-".into()
                } else {
                    slice.to_string()
                },
                out.stats.cgc_runs.to_string(),
                fmt_bytes(out.stats.cgc_swept_bytes as usize),
                fmt_dur(std::time::Duration::from_nanos(
                    out.stats.cgc_pause_ns_total,
                )),
                fmt_dur(std::time::Duration::from_nanos(out.stats.cgc_pause_ns_max)),
                fmt_bytes(out.stats.max_pinned_bytes),
            ]);
        }
    }
    print!("{}", pause.render());

    // Second addendum (E13): deterministic reclamation at scale, under
    // the work-packet collector at several worker counts. The suite's
    // entangled benchmarks keep their structures reachable to the end
    // (checksums), so CGC finds nothing dead there. This scenario builds
    // the paper's reclamation case directly on the substrate: a sibling
    // pins 100k objects, the owner's local collection shields them in
    // place (entangled space), the pinner then drops half — the
    // concurrent collector must reclaim exactly that half. Repeated
    // rounds (fresh store each) yield full-cycle pause percentiles per
    // worker count; `workers = 0` is the packetized collector driven
    // sequentially (no executor), the single-threaded baseline.
    println!("\nE13: CGC reclamation at scale (100k shielded objects, half dropped):");
    {
        use mpl_gc::{collect_entangled, collect_local, CgcState, Graveyard};
        use mpl_heap::{ObjKind, ObjRef, Store, StoreConfig, Value as HVal};

        const N: usize = 100_000;
        const ROUNDS: usize = 9;

        #[derive(Serialize)]
        struct E13Row {
            workers: usize,
            rounds: usize,
            pause_p50_us: u128,
            pause_p90_us: u128,
            pause_max_us: u128,
            packets: u64,
        }

        let run_round = |state: &CgcState| -> std::time::Duration {
            let s = Store::new(StoreConfig::default());
            let root = s.new_root_heap();
            let (l, _r) = s.fork_heaps(root);
            let mut objs: Vec<ObjRef> = (0..N)
                .map(|i| s.alloc_values(l, ObjKind::Ref, &[HVal::Int(i as i64)]))
                .collect();
            // A task on the left path pins every object (entanglement
            // level 0: the pinner's LCA with the owner is the root).
            for &o in &objs {
                s.pin(o, 0);
            }
            // The owner's local collection shields the pinned population.
            let g = Graveyard::new();
            let mut no_roots: [ObjRef; 0] = [];
            collect_local(&s, l, &mut no_roots, &g, true);
            // The pinner drops every other object.
            let survivors: Vec<ObjRef> = objs
                .drain(..)
                .enumerate()
                .filter_map(|(i, o)| (i % 2 == 0).then_some(o))
                .collect();
            let roots: Vec<ObjRef> = survivors.iter().map(|&o| s.resolve(o)).collect();
            let start = std::time::Instant::now();
            // One root packet per 4k survivors, seeding the parallel
            // tracers the way the runtime's per-task packets would.
            let out = collect_entangled(&s, state, || {
                roots.chunks(4096).map(|c| c.to_vec()).collect()
            });
            let pause = start.elapsed();
            assert_eq!(out.swept_objects, N / 2, "exactly the dropped half");
            assert!(
                survivors
                    .iter()
                    .all(|&o| !s.resolved_handle(o).obj().header().is_dead()),
                "survivors intact"
            );
            pause
        };

        let mut e13 = Table::new(&["workers", "rounds", "p50 pause", "p90 pause", "max pause"]);
        let mut e13_rows = Vec::new();
        for workers in [0usize, 2, 4, 8] {
            let ex = (workers > 0).then(|| mpl_sched::Executor::new(workers));
            let _driver = ex.as_ref().and_then(|e| e.install_driver());
            let state = CgcState::new();
            let mut pauses: Vec<std::time::Duration> =
                (0..ROUNDS).map(|_| run_round(&state)).collect();
            pauses.sort();
            let (p50, p90, pmax) = (
                pauses[ROUNDS / 2],
                pauses[(ROUNDS * 9) / 10],
                pauses[ROUNDS - 1],
            );
            e13.row(vec![
                if workers == 0 {
                    "seq".into()
                } else {
                    workers.to_string()
                },
                ROUNDS.to_string(),
                fmt_dur(p50),
                fmt_dur(p90),
                fmt_dur(pmax),
            ]);
            e13_rows.push(E13Row {
                workers,
                rounds: ROUNDS,
                pause_p50_us: p50.as_micros(),
                pause_p90_us: p90.as_micros(),
                pause_max_us: pmax.as_micros(),
                packets: 0, // per-cycle packet counts live in StoreStats, not here
            });
        }
        print!("{}", e13.render());
        write_json("e13_cgc_parallel", &e13_rows);
    }
    println!("\nwrote results/e5_entangled.json, results/e13_cgc_parallel.json");
}
