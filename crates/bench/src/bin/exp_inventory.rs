//! E1 — Benchmark inventory table: name, class (disentangled/entangled),
//! default size, and the memory-behaviour profile measured on a small run
//! (allocations, barriered accesses, entangled accesses, pins).

use mpl_bench::{run_mpl, run_native, write_json, Table};
use mpl_runtime::RuntimeConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    entangled: bool,
    default_n: usize,
    allocs: u64,
    barrier_reads: u64,
    entangled_reads: u64,
    pins: u64,
}

fn main() {
    println!("E1: benchmark inventory (profiles from small runs)\n");
    let mut table = Table::new(&[
        "benchmark",
        "class",
        "default n",
        "allocs",
        "barrier reads",
        "entangled reads",
        "pins",
    ]);
    let mut rows = Vec::new();
    for bench in mpl_bench_suite::all() {
        let n = bench.small_n();
        let run = run_mpl(bench.as_ref(), n, RuntimeConfig::managed());
        let (native, _) = run_native(bench.as_ref(), n);
        assert_eq!(run.checksum, native, "{}: checksum mismatch", bench.name());
        let class = if bench.entangled() {
            "entangled"
        } else {
            "disentangled"
        };
        table.row(vec![
            bench.name().to_string(),
            class.to_string(),
            bench.default_n().to_string(),
            run.stats.allocs.to_string(),
            run.stats.barrier_reads.to_string(),
            run.stats.entangled_reads.to_string(),
            run.stats.pins.to_string(),
        ]);
        rows.push(Row {
            name: bench.name().to_string(),
            entangled: bench.entangled(),
            default_n: bench.default_n(),
            allocs: run.stats.allocs,
            barrier_reads: run.stats.barrier_reads,
            entangled_reads: run.stats.entangled_reads,
            pins: run.stats.pins,
        });
    }
    print!("{}", table.render());
    write_json("e1_inventory", &rows);
    println!("\nwrote results/e1_inventory.json");
}
