//! E9 — Ablations over the design parameters DESIGN.md calls out:
//!
//! * chunk size (allocation granularity vs reclamation granularity);
//! * LGC trigger (collection frequency vs residency);
//! * CGC trigger (pinned-footprint threshold vs sweep frequency).

use mpl_bench::{fmt_bytes, fmt_dur, run_mpl, scaled, write_json, Table};
use mpl_runtime::{GcPolicy, RuntimeConfig, StoreConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ablation: String,
    benchmark: String,
    setting: String,
    wall_us: u128,
    max_live: usize,
    lgc_runs: u64,
    cgc_runs: u64,
    max_pinned: usize,
    lgc_pause_ns_total: u64,
    lgc_pause_ns_max: u64,
}

fn main() {
    println!("E9: ablations (block size, LGC trigger, CGC trigger)\n");
    let mut rows = Vec::new();

    // Block-size sweep on msort (allocation-heavy, disentangled).
    let mut t1 = Table::new(&["block words", "wall", "R_1", "LGC runs"]);
    let msort = mpl_bench_suite::by_name("msort").unwrap();
    let n = scaled(msort.default_n()) / 2;
    for words in [128usize, 512, 2048] {
        let cfg = RuntimeConfig {
            store: StoreConfig {
                block_words: words,
                ..Default::default()
            },
            ..RuntimeConfig::managed()
        };
        let run = run_mpl(msort.as_ref(), n, cfg);
        t1.row(vec![
            words.to_string(),
            fmt_dur(run.wall),
            fmt_bytes(run.stats.max_live_bytes),
            run.stats.lgc_runs.to_string(),
        ]);
        rows.push(Row {
            ablation: "block_words".into(),
            benchmark: "msort".into(),
            setting: words.to_string(),
            wall_us: run.wall.as_micros(),
            max_live: run.stats.max_live_bytes,
            lgc_runs: run.stats.lgc_runs,
            cgc_runs: run.stats.cgc_runs,
            max_pinned: run.stats.max_pinned_bytes,
            lgc_pause_ns_total: run.stats.lgc_pause_ns_total,
            lgc_pause_ns_max: run.stats.lgc_pause_ns_max,
        });
    }
    println!("chunk-size sweep (msort, n={n}):");
    print!("{}", t1.render());

    // LGC trigger sweep on msort. The pause columns make the trigger's
    // pause/residency trade explicit: smaller triggers collect more often
    // but each pause covers a smaller heap.
    let mut t2 = Table::new(&[
        "LGC trigger",
        "wall",
        "R_1",
        "LGC runs",
        "total LGC pause",
        "max LGC pause",
    ]);
    for trigger in [64 * 1024usize, 256 * 1024, 1024 * 1024] {
        let cfg = RuntimeConfig::managed().with_policy(GcPolicy {
            lgc_trigger_bytes: trigger,
            ..GcPolicy::default()
        });
        let run = run_mpl(msort.as_ref(), n, cfg);
        t2.row(vec![
            fmt_bytes(trigger),
            fmt_dur(run.wall),
            fmt_bytes(run.stats.max_live_bytes),
            run.stats.lgc_runs.to_string(),
            fmt_dur(std::time::Duration::from_nanos(
                run.stats.lgc_pause_ns_total,
            )),
            fmt_dur(std::time::Duration::from_nanos(run.stats.lgc_pause_ns_max)),
        ]);
        rows.push(Row {
            ablation: "lgc_trigger".into(),
            benchmark: "msort".into(),
            setting: trigger.to_string(),
            wall_us: run.wall.as_micros(),
            max_live: run.stats.max_live_bytes,
            lgc_runs: run.stats.lgc_runs,
            cgc_runs: run.stats.cgc_runs,
            max_pinned: run.stats.max_pinned_bytes,
            lgc_pause_ns_total: run.stats.lgc_pause_ns_total,
            lgc_pause_ns_max: run.stats.lgc_pause_ns_max,
        });
    }
    println!("\nLGC-trigger sweep (msort, n={n}):");
    print!("{}", t2.render());

    // CGC trigger sweep on dedup (entangled).
    let mut t3 = Table::new(&["CGC trigger", "wall", "CGC runs", "peak pinned"]);
    let dedup = mpl_bench_suite::by_name("dedup").unwrap();
    let dn = scaled(dedup.default_n()) / 2;
    for trigger in [32 * 1024usize, 128 * 1024, usize::MAX] {
        let cfg = RuntimeConfig::managed().with_policy(GcPolicy {
            cgc_trigger_pinned_bytes: trigger,
            ..GcPolicy::default()
        });
        let run = run_mpl(dedup.as_ref(), dn, cfg);
        let label = if trigger == usize::MAX {
            "off".to_string()
        } else {
            fmt_bytes(trigger)
        };
        t3.row(vec![
            label.clone(),
            fmt_dur(run.wall),
            run.stats.cgc_runs.to_string(),
            fmt_bytes(run.stats.max_pinned_bytes),
        ]);
        rows.push(Row {
            ablation: "cgc_trigger".into(),
            benchmark: "dedup".into(),
            setting: label,
            wall_us: run.wall.as_micros(),
            max_live: run.stats.max_live_bytes,
            lgc_runs: run.stats.lgc_runs,
            cgc_runs: run.stats.cgc_runs,
            max_pinned: run.stats.max_pinned_bytes,
            lgc_pause_ns_total: run.stats.lgc_pause_ns_total,
            lgc_pause_ns_max: run.stats.lgc_pause_ns_max,
        });
    }
    println!("\nCGC-trigger sweep (dedup, n={dn}):");
    print!("{}", t3.render());

    // CGC slicing (incremental marking): pause bound vs slice size.
    let mut t5 = Table::new(&[
        "slice (objs)",
        "wall",
        "CGC cycles",
        "total pause",
        "max pause",
    ]);
    let uf = mpl_bench_suite::by_name("unionfind").unwrap();
    let un = scaled(uf.default_n()) / 2;
    for slice in [0usize, 4096, 512, 64] {
        let mut cfg = RuntimeConfig::managed().with_cgc_slice(slice);
        cfg.policy.cgc_trigger_pinned_bytes = 64 * 1024;
        let run = run_mpl(uf.as_ref(), un, cfg);
        t5.row(vec![
            if slice == 0 {
                "monolithic".into()
            } else {
                slice.to_string()
            },
            fmt_dur(run.wall),
            run.stats.cgc_runs.to_string(),
            fmt_dur(std::time::Duration::from_nanos(
                run.stats.cgc_pause_ns_total,
            )),
            fmt_dur(std::time::Duration::from_nanos(run.stats.cgc_pause_ns_max)),
        ]);
        rows.push(Row {
            ablation: "cgc-slice".into(),
            benchmark: "unionfind".into(),
            setting: slice.to_string(),
            wall_us: run.wall.as_micros(),
            max_live: run.stats.max_live_bytes,
            lgc_runs: run.stats.lgc_runs,
            cgc_runs: run.stats.cgc_runs,
            max_pinned: run.stats.max_pinned_bytes,
            lgc_pause_ns_total: run.stats.lgc_pause_ns_total,
            lgc_pause_ns_max: run.stats.lgc_pause_ns_max,
        });
    }
    println!("\nCGC incremental-slicing sweep (unionfind, n={un}, trigger=64KiB):");
    print!("{}", t5.render());

    // Suspects (entanglement candidates) on/off.
    let mut t4 = Table::new(&["benchmark", "suspects", "wall", "ent.reads", "pins"]);
    for name in ["dedup", "unionfind", "conc_stack", "tokens"] {
        let bench = mpl_bench_suite::by_name(name).unwrap();
        let n = scaled(bench.default_n()) / 2;
        for suspects in [true, false] {
            let cfg = RuntimeConfig {
                suspects,
                ..RuntimeConfig::managed()
            };
            let run = run_mpl(bench.as_ref(), n, cfg);
            t4.row(vec![
                name.to_string(),
                if suspects { "on" } else { "off" }.into(),
                fmt_dur(run.wall),
                run.stats.entangled_reads.to_string(),
                run.stats.pins.to_string(),
            ]);
            rows.push(Row {
                ablation: "suspects".into(),
                benchmark: name.to_string(),
                setting: suspects.to_string(),
                wall_us: run.wall.as_micros(),
                max_live: run.stats.max_live_bytes,
                lgc_runs: run.stats.lgc_runs,
                cgc_runs: run.stats.cgc_runs,
                max_pinned: run.stats.max_pinned_bytes,
                lgc_pause_ns_total: run.stats.lgc_pause_ns_total,
                lgc_pause_ns_max: run.stats.lgc_pause_ns_max,
            });
        }
    }
    println!("\nentanglement-candidates (suspects) fast path:");
    print!("{}", t4.render());

    write_json("e9_ablation", &rows);
    println!("\nwrote results/e9_ablation.json");
}
