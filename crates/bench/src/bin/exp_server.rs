//! E12 — mpl-serve: long-running multi-tenant serving with per-tenant
//! heap budgets, open-loop load, and SLO reporting.
//!
//! Three measurements on one persistent runtime per run:
//!
//! * **Arrival-rate sweep** — the standard three-tenant mix (a
//!   disentangled web tenant, an entangled feed tenant, a payload-heavy
//!   batch tenant) under a seeded open-loop Poisson schedule at several
//!   offered rates. Reports per-tenant p50/p99/p999 latency, goodput,
//!   shed counts, GC pause overlap and the live-bytes slope: the steady
//!   state must be flat (slope ≈ 0) even over minutes of traffic.
//! * **Budget isolation** — the same victim tenants with a fourth slot
//!   filled either by a benign control twin or by an adversary that
//!   retains huge entangled payloads against a small budget. The
//!   adversary must be shed by admission control while the victims'
//!   p99 stays within 10% of the control run — budget pressure must not
//!   leak across tenants.
//! * **CI gate numbers** — the smoke run (fixed seed/rate, audits on)
//!   writes `results/e12_server.json` plus the runtime's JSON telemetry
//!   report; CI asserts zero dead-object traces, zero audit failures, a
//!   bounded p99 and a flat live-bytes slope.
//!
//! `--smoke` shrinks every schedule to a couple of seconds; `MPL_SCALE`
//! scales the full run's duration.

use mpl_bench::{scaled, write_json, Table};
use mpl_runtime::{Runtime, RuntimeConfig};
use mpl_serve::{ArrivalProcess, Profile, Server, ServerReport, TenantSpec, TrafficConfig};
use serde::Serialize;

const SEED: u64 = 0x0e12_5eed;

#[derive(Serialize)]
struct TenantRow {
    tenant: String,
    admitted: u64,
    completed: u64,
    shed: u64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    goodput_rps: f64,
    budget_sheds: u64,
}

#[derive(Serialize)]
struct SweepRow {
    rate_hz: f64,
    offered: usize,
    completed: u64,
    shed: u64,
    goodput_rps: f64,
    gc_pause_overlap_pct: f64,
    live_slope_bytes_per_s: f64,
    live_samples: usize,
    schedule_digest: u64,
    tenants: Vec<TenantRow>,
}

#[derive(Serialize)]
struct Isolation {
    rate_hz: f64,
    control_victim_p99_us: f64,
    adversary_victim_p99_us: f64,
    victim_p99_ratio: f64,
    adversary_shed: u64,
    adversary_completed: u64,
    adversary_budget_sheds: u64,
    adversary_peak_kib: u64,
    adversary_limit_kib: u64,
}

#[derive(Serialize)]
struct E12 {
    smoke: bool,
    seed: u64,
    lgc_dead_traced: u64,
    audit_failures: u64,
    worst_p99_us: f64,
    worst_live_slope_bytes_per_s: f64,
    sweep: Vec<SweepRow>,
    isolation: Isolation,
}

fn victims() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("web", 8 << 20).cache_slots(128),
        TenantSpec::new("feed", 8 << 20).profile(Profile::Entangled),
        TenantSpec::new("batch", 16 << 20).payload_scale(4),
    ]
}

fn server_config() -> RuntimeConfig {
    RuntimeConfig::managed().with_telemetry().with_audit()
}

fn run_once(specs: Vec<TenantSpec>, traffic: &TrafficConfig) -> ServerReport {
    let rt = Runtime::new(server_config());
    let mut srv = Server::new(&rt, specs);
    let rep = srv.run(traffic);
    // Quiescent invariants every run must leave behind.
    rt.assert_heap_sound();
    assert_eq!(rt.parked_results(), 0, "leaked parked results");
    srv.shutdown();
    assert_eq!(rt.live_root_stacks(), 0, "leaked session roots");
    // The last runtime's telemetry doubles as the CI artifact.
    let report = rt.telemetry_report();
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/e12_telemetry.json", &report.json);
    rep
}

fn tenant_rows(rep: &ServerReport) -> Vec<TenantRow> {
    rep.tenants
        .iter()
        .map(|t| TenantRow {
            tenant: t.name.clone(),
            admitted: t.admitted,
            completed: t.completed,
            shed: t.shed_budget + t.shed_injected,
            p50_us: t.p50_ns as f64 / 1e3,
            p99_us: t.p99_ns as f64 / 1e3,
            p999_us: t.p999_ns as f64 / 1e3,
            goodput_rps: t.goodput_rps,
            budget_sheds: t.budget.as_ref().map_or(0, |b| b.sheds),
        })
        .collect()
}

/// Victims' worst p99 (µs) across the first three tenants.
fn victim_p99_us(rep: &ServerReport) -> f64 {
    rep.tenants
        .iter()
        .take(3)
        .map(|t| t.p99_ns as f64 / 1e3)
        .fold(0.0, f64::max)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    mpl_fail::init_from_env();

    // Duration per measured run, seconds. Full runs are minutes-scale
    // (3 sweep rates + 2 isolation runs), smoke is a couple of seconds.
    let dur_s: f64 = if smoke { 2.0 } else { scaled(40) as f64 };
    let rates: Vec<f64> = if smoke {
        vec![300.0]
    } else {
        vec![200.0, 500.0, 1000.0]
    };

    let audit0 = mpl_gc::audit::counters();
    let mut dead = 0u64;
    let mut worst_p99 = 0.0f64;
    let mut worst_slope = 0.0f64;

    // ---- arrival-rate sweep --------------------------------------------
    let mut sweep = Vec::new();
    let mut sweep_table = Table::new(&[
        "rate",
        "offered",
        "completed",
        "shed",
        "goodput",
        "p99(web)",
        "p99(feed)",
        "p99(batch)",
        "gc-ovl%",
        "slope B/s",
    ]);
    for &rate in &rates {
        let traffic = TrafficConfig {
            seed: SEED,
            rate_hz: rate,
            requests: (rate * dur_s) as usize,
            process: ArrivalProcess::Poisson,
            tenants: 3,
            sessions_per_tenant: 2,
            ..TrafficConfig::default()
        };
        let rep = run_once(victims(), &traffic);
        dead += rep.gc.lgc_dead_traced;
        worst_p99 = worst_p99.max(victim_p99_us(&rep));
        worst_slope = if rep.live_slope_bytes_per_s.abs() > worst_slope.abs() {
            rep.live_slope_bytes_per_s
        } else {
            worst_slope
        };
        println!("-- rate {rate} rps --");
        println!("{}", rep.render_table());
        sweep_table.row(vec![
            format!("{rate:.0}"),
            rep.offered.to_string(),
            rep.completed_total.to_string(),
            rep.shed_total.to_string(),
            format!("{:.0}", rep.goodput_rps),
            format!("{:.1}", rep.tenants[0].p99_ns as f64 / 1e3),
            format!("{:.1}", rep.tenants[1].p99_ns as f64 / 1e3),
            format!("{:.1}", rep.tenants[2].p99_ns as f64 / 1e3),
            format!("{:.2}", rep.gc.pause_overlap_pct),
            format!("{:+.0}", rep.live_slope_bytes_per_s),
        ]);
        sweep.push(SweepRow {
            rate_hz: rate,
            offered: rep.offered,
            completed: rep.completed_total,
            shed: rep.shed_total,
            goodput_rps: rep.goodput_rps,
            gc_pause_overlap_pct: rep.gc.pause_overlap_pct,
            live_slope_bytes_per_s: rep.live_slope_bytes_per_s,
            live_samples: rep.live_samples,
            schedule_digest: rep.digest,
            tenants: tenant_rows(&rep),
        });
    }
    println!("E12a: open-loop arrival-rate sweep (seed {SEED:#x})");
    println!("{}", sweep_table.render());

    // ---- budget isolation ----------------------------------------------
    // Same seed and rate; slot 3 is a benign control twin in the first
    // run and the adversary in the second, so tenants 0..2 receive an
    // identical arrival stream in both.
    let iso_rate = if smoke { 300.0 } else { 500.0 };
    let iso_traffic = TrafficConfig {
        seed: SEED ^ 0xadd,
        rate_hz: iso_rate,
        requests: (iso_rate * dur_s) as usize,
        process: ArrivalProcess::Poisson,
        tenants: 4,
        sessions_per_tenant: 2,
        ..TrafficConfig::default()
    };
    let mut control_specs = victims();
    control_specs.push(TenantSpec::new("ctrl", 16 << 20));
    let control = run_once(control_specs, &iso_traffic);
    let mut adv_specs = victims();
    adv_specs.push(
        TenantSpec::new("hog", 256 * 1024)
            .profile(Profile::Entangled)
            .payload_scale(64)
            .cache_slots(256),
    );
    let adversary = run_once(adv_specs, &iso_traffic);
    dead += control.gc.lgc_dead_traced + adversary.gc.lgc_dead_traced;
    worst_p99 = worst_p99.max(victim_p99_us(&adversary));
    let hog = &adversary.tenants[3];
    let iso = Isolation {
        rate_hz: iso_rate,
        control_victim_p99_us: victim_p99_us(&control),
        adversary_victim_p99_us: victim_p99_us(&adversary),
        victim_p99_ratio: victim_p99_us(&adversary) / victim_p99_us(&control).max(1e-9),
        adversary_shed: hog.shed_budget + hog.shed_injected,
        adversary_completed: hog.completed,
        adversary_budget_sheds: hog.budget.as_ref().map_or(0, |b| b.sheds),
        adversary_peak_kib: hog
            .budget
            .as_ref()
            .map_or(0, |b| b.max_live_bytes as u64 / 1024),
        adversary_limit_kib: hog.budget.as_ref().map_or(0, |b| b.limit as u64 / 1024),
    };
    println!("E12b: budget isolation at {iso_rate} rps");
    println!("control (benign 4th tenant):\n{}", control.render_table());
    println!(
        "adversary (hog, 256 KiB budget, 64x entangled payloads):\n{}",
        adversary.render_table()
    );
    println!(
        "victim p99: control {:.1}µs vs adversary {:.1}µs (ratio {:.3}); hog shed {} of {} offered",
        iso.control_victim_p99_us,
        iso.adversary_victim_p99_us,
        iso.victim_p99_ratio,
        iso.adversary_shed,
        hog.admitted + iso.adversary_shed,
    );
    assert!(iso.adversary_shed > 0, "adversary was never shed");

    let audit1 = mpl_gc::audit::counters();
    let payload = E12 {
        smoke,
        seed: SEED,
        lgc_dead_traced: dead,
        audit_failures: audit1.failures - audit0.failures,
        worst_p99_us: worst_p99,
        worst_live_slope_bytes_per_s: worst_slope,
        sweep,
        isolation: iso,
    };
    assert_eq!(payload.lgc_dead_traced, 0, "corruption canary");
    assert_eq!(payload.audit_failures, 0, "phase audits");
    write_json("e12_server", &payload);
    println!("results/e12_server.json + results/e12_telemetry.json written");
}
