//! E2 — Main results table (the paper's headline claim: "MPL incurs a
//! small time and space overhead compared to sequential runs, and scales
//! well"). For every benchmark:
//!
//! * `T_s` — sequential baseline wall time (barrier-free, MLton stand-in)
//! * `T_1` — managed runtime on one processor (wall time)
//! * `T_1/T_s` — the overhead of hierarchical+entanglement management
//! * `T_64` — virtual-time work-stealing simulation on 64 processors
//! * speedup `T_1/T_64` (in work units, from the recorded DAG)

use mpl_bench::{fmt_dur, run_mpl, run_seq, scale_bench, write_json, Table};
use mpl_runtime::{simulate, RuntimeConfig, SimParams};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    entangled: bool,
    n: usize,
    t_seq_us: u128,
    t_mpl_us: u128,
    overhead: f64,
    work: u64,
    span: u64,
    sim_t1: u64,
    sim_t64: u64,
    sim_speedup64: f64,
    sched_pushes: u64,
    sched_steals: u64,
    sched_sequentialized: u64,
    sched_parks: u64,
    audit_runs: u64,
    audit_events: u64,
    audit_ring_overflows: u64,
    lgc_dead_traced: u64,
    cgc_packets: u64,
    cgc_packet_retries: u64,
}

fn main() {
    println!("E2: time overhead vs sequential + simulated 64-proc speedup\n");
    let mut table = Table::new(&[
        "benchmark",
        "class",
        "n",
        "T_s",
        "T_1",
        "T_1/T_s",
        "parallelism",
        "speedup@64",
    ]);
    let mut rows = Vec::new();
    for bench in mpl_bench_suite::all() {
        let n = scale_bench(bench.as_ref());
        // Median of three runs on each side (single-core hosts are noisy).
        let mut seq_runs: Vec<_> = (0..3).map(|_| run_seq(bench.as_ref(), n)).collect();
        seq_runs.sort_by_key(|r| r.wall);
        let seq = seq_runs.swap_remove(1);
        let mut mpl_runs: Vec<_> = (0..3)
            .map(|_| run_mpl(bench.as_ref(), n, RuntimeConfig::managed().with_dag()))
            .collect();
        mpl_runs.sort_by_key(|r| r.wall);
        let mpl = mpl_runs.swap_remove(1);
        assert_eq!(mpl.checksum, seq.checksum, "{}", bench.name());
        let dag = mpl.dag.expect("dag recorded");
        let t1 = simulate(
            &dag,
            SimParams {
                procs: 1,
                steal_overhead: 8,
                seed: 1,
            },
        );
        let t64 = simulate(
            &dag,
            SimParams {
                procs: 64,
                steal_overhead: 8,
                seed: 1,
            },
        );
        let overhead = mpl.wall.as_secs_f64() / seq.wall.as_secs_f64().max(1e-9);
        let speedup = t1.time as f64 / t64.time.max(1) as f64;
        table.row(vec![
            bench.name().into(),
            if bench.entangled() { "ent" } else { "dis" }.into(),
            n.to_string(),
            fmt_dur(seq.wall),
            fmt_dur(mpl.wall),
            format!("{overhead:.2}x"),
            format!("{:.1}", dag.parallelism()),
            format!("{speedup:.1}x"),
        ]);
        rows.push(Row {
            name: bench.name().into(),
            entangled: bench.entangled(),
            n,
            t_seq_us: seq.wall.as_micros(),
            t_mpl_us: mpl.wall.as_micros(),
            overhead,
            work: dag.total_work(),
            span: dag.span(),
            sim_t1: t1.time,
            sim_t64: t64.time,
            sim_speedup64: speedup,
            sched_pushes: mpl.stats.sched_pushes,
            sched_steals: mpl.stats.sched_steals,
            sched_sequentialized: mpl.stats.sched_sequentialized,
            sched_parks: mpl.stats.sched_parks,
            // Audit layer off by default: runs/events stay zero here,
            // demonstrating the compiled-in-but-disabled configuration;
            // `lgc_dead_traced` is the always-on corruption detector.
            audit_runs: mpl.stats.audit_runs,
            audit_events: mpl.stats.audit_events,
            audit_ring_overflows: mpl.stats.audit_ring_overflows,
            lgc_dead_traced: mpl.stats.lgc_dead_traced,
            // Work-packet CGC accounting: zero on the disentangled suite
            // (CGC never runs there) — recorded so regressions show up
            // in the main results JSON.
            cgc_packets: mpl.stats.cgc_packets,
            cgc_packet_retries: mpl.stats.cgc_packet_retries,
        });
    }
    print!("{}", table.render());
    write_json("e2_overhead", &rows);
    println!("\nwrote results/e2_overhead.json");
}
