//! E14 — Allocation-throughput microbenchmark: the cost of one object
//! allocation through the block allocator's bump-pointer fast path, in
//! ns/object and MB/s, per size class:
//!
//! * 2-field tuple (class 0), 6-field tuple (class 1), 14-field tuple
//!   (class 2), 24-field tuple (overflow class), `ref` cell, raw array
//! * a sustained churn loop with LGC enabled (allocation + reclamation
//!   steady state, the rate real programs see)
//!
//! Each row reports how many of the timed allocations overflowed to the
//! store slow path (`store_allocs`, derived from the blocks-allocated
//! counter): the fast-path claim is measurable as a block-refill rate of
//! roughly one per `block_words / object-size` allocations.
//!
//! With `--check <baseline.json>` the binary compares its measured
//! ns/op against a committed baseline and exits non-zero if any row
//! regressed by more than 5% (override with `MPL_BENCH_TOLERANCE`, a
//! fraction). CI pins the baseline under `results/baselines/`.

use std::time::Instant;

use mpl_bench::{write_json, Table};
use mpl_runtime::{GcPolicy, Mutator, Runtime, RuntimeConfig, Value};
use serde::Serialize;

const ITERS: usize = 1_000_000;
/// Timed batches per row; the reported ns/op is the fastest batch
/// (min-of-N damps page-fault and scheduler noise on shared machines).
const BATCHES: usize = 10;

/// Percentile summary of the `alloc_refill` latency histogram, written
/// alongside the throughput rows as `results/e14_refill.json`.
#[derive(Serialize)]
struct RefillSummary {
    count: u64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
    mean_ns: f64,
}

#[derive(Serialize)]
struct Row {
    op: String,
    ns_per_op: f64,
    mb_per_s: f64,
    /// Store-path (block refill / oversized) allocations during the
    /// timed loop; the remainder ran on the task-local bump pointer.
    store_allocs: u64,
}

fn bench_alloc(
    name: &str,
    bytes_per_op: usize,
    rows: &mut Vec<Row>,
    table: &mut Table,
    m: &mut Mutator<'_>,
    mut f: impl FnMut(&mut Mutator<'_>),
) {
    for _ in 0..1000 {
        f(m);
    }
    m.sync_stats();
    let before = m.runtime().stats();
    let per_batch = ITERS / BATCHES;
    let mut ns = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..per_batch {
            f(m);
        }
        ns = ns.min(start.elapsed().as_nanos() as f64 / per_batch as f64);
    }
    m.sync_stats();
    let d = m.runtime().stats().delta(&before);
    let mb_per_s = bytes_per_op as f64 / ns * 1e9 / (1024.0 * 1024.0);
    table.row(vec![
        name.to_string(),
        format!("{ns:.1}"),
        format!("{mb_per_s:.0}"),
        d.blocks_allocated.to_string(),
    ]);
    rows.push(Row {
        op: name.to_string(),
        ns_per_op: ns,
        mb_per_s,
        store_allocs: d.blocks_allocated,
    });
}

fn check(rows: &[Row], baseline_path: &str) -> bool {
    let tolerance: f64 = std::env::var("MPL_BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("cannot parse baseline {baseline_path}: no rows found");
        return false;
    }
    let mut ok = true;
    for (op, base_ns) in &baseline {
        let Some(now) = rows.iter().find(|r| &r.op == op) else {
            eprintln!("FAIL {op}: missing from this run");
            ok = false;
            continue;
        };
        let ratio = now.ns_per_op / base_ns;
        if ratio > 1.0 + tolerance {
            eprintln!(
                "FAIL {op}: {:.1} ns/op vs baseline {base_ns:.1} ({:+.1}%, tolerance {:.0}%)",
                now.ns_per_op,
                (ratio - 1.0) * 100.0,
                tolerance * 100.0
            );
            ok = false;
        } else {
            println!(
                "ok   {op}: {:.1} ns/op vs baseline {base_ns:.1} ({:+.1}%)",
                now.ns_per_op,
                (ratio - 1.0) * 100.0
            );
        }
    }
    ok
}

/// Minimal parse of our own pretty-printed output: pairs every
/// `"op": "..."` with the following `"ns_per_op": <float>`. (The
/// vendored serde is serialize-only, and the format is ours.)
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut op: Option<String> = None;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(rest) = line.strip_prefix("\"op\": \"") {
            op = rest.strip_suffix('\"').map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("\"ns_per_op\": ") {
            if let (Some(o), Ok(ns)) = (op.take(), rest.parse::<f64>()) {
                out.push((o, ns));
            }
        }
    }
    out
}

fn main() {
    println!("E14: allocation throughput ({ITERS} allocations per row)\n");
    let mut table = Table::new(&["operation", "ns/op", "MB/s", "block refills"]);
    let mut rows = Vec::new();

    // Pure allocator cost: GC off so nothing but the bump path and its
    // block refills is measured.
    let rt = Runtime::new(RuntimeConfig::managed().with_policy(GcPolicy::disabled()));
    rt.run(|m| {
        let obj_bytes = |fields: usize| mpl_heap::OBJECT_OVERHEAD_BYTES + 8 * fields;
        bench_alloc(
            "alloc_tuple/2 (class 0)",
            obj_bytes(2),
            &mut rows,
            &mut table,
            m,
            |m| {
                std::hint::black_box(m.alloc_tuple(&[Value::Int(1), Value::Int(2)]));
            },
        );
        let f6 = [Value::Int(0); 6];
        bench_alloc(
            "alloc_tuple/6 (class 1)",
            obj_bytes(6),
            &mut rows,
            &mut table,
            m,
            |m| {
                std::hint::black_box(m.alloc_tuple(&f6));
            },
        );
        let f14 = [Value::Int(0); 14];
        bench_alloc(
            "alloc_tuple/14 (class 2)",
            obj_bytes(14),
            &mut rows,
            &mut table,
            m,
            |m| {
                std::hint::black_box(m.alloc_tuple(&f14));
            },
        );
        let f24 = [Value::Int(0); 24];
        bench_alloc(
            "alloc_tuple/24 (overflow)",
            obj_bytes(24),
            &mut rows,
            &mut table,
            m,
            |m| {
                std::hint::black_box(m.alloc_tuple(&f24));
            },
        );
        bench_alloc("alloc_ref", obj_bytes(1), &mut rows, &mut table, m, |m| {
            std::hint::black_box(m.alloc_ref(Value::Int(7)));
        });
        bench_alloc("alloc_raw/8", obj_bytes(8), &mut rows, &mut table, m, |m| {
            std::hint::black_box(m.alloc_raw(8));
        });
        Value::Unit
    });

    // Sustained churn with the local collector running: allocation rate
    // at the steady state where reclamation keeps residency flat.
    let rt = Runtime::new(RuntimeConfig::managed());
    rt.run(|m| {
        bench_alloc(
            "alloc_tuple/2 + LGC churn",
            mpl_heap::OBJECT_OVERHEAD_BYTES + 16,
            &mut rows,
            &mut table,
            m,
            |m| {
                std::hint::black_box(m.alloc_tuple(&[Value::Int(1), Value::Int(2)]));
            },
        );
        Value::Unit
    });

    print!("{}", table.render());
    write_json("e14_alloc", &rows);
    println!("\nwrote results/e14_alloc.json");

    // Refill *latency* (the rows above only count refills): a telemetered
    // runtime with tiny blocks so the bump path overflows constantly, and
    // the `alloc_refill` histogram times each store-path fallback (budget
    // charge + store allocation + cache re-adoption).
    mpl_obs::reset_metrics();
    let mut cfg = RuntimeConfig::managed()
        .with_telemetry()
        .with_policy(GcPolicy::disabled());
    cfg.store.block_words = 128;
    let rt = Runtime::new(cfg);
    rt.run(|m| {
        for _ in 0..200_000 {
            std::hint::black_box(m.alloc_tuple(&[Value::Int(1), Value::Int(2)]));
        }
        Value::Unit
    });
    let refill = mpl_obs::metric_snapshots()
        .into_iter()
        .find(|(m, _)| *m == mpl_obs::Metric::AllocRefill)
        .map(|(_, s)| s)
        .expect("alloc_refill metric registered");
    drop(rt);
    println!(
        "\nrefill latency (store-path fallback, {} refills): \
         p50 {} ns  p90 {} ns  p99 {} ns  max {} ns  mean {:.0} ns",
        refill.count,
        refill.percentile(0.50),
        refill.percentile(0.90),
        refill.percentile(0.99),
        refill.max,
        refill.mean(),
    );
    let refill_row = RefillSummary {
        count: refill.count,
        p50_ns: refill.percentile(0.50),
        p90_ns: refill.percentile(0.90),
        p99_ns: refill.percentile(0.99),
        p999_ns: refill.percentile(0.999),
        max_ns: refill.max,
        mean_ns: refill.mean(),
    };
    write_json("e14_refill", &refill_row);
    println!("wrote results/e14_refill.json");

    let mut args = std::env::args().skip(1);
    if args.next().as_deref() == Some("--check") {
        let baseline = args
            .next()
            .unwrap_or_else(|| "results/baselines/e14_alloc_baseline.json".into());
        println!("\nchecking against {baseline}");
        if !check(&rows, &baseline) {
            std::process::exit(1);
        }
        println!("all rows within tolerance");
    }
}
