//! E10 — Always-on telemetry: what the observability layer shows, and
//! what it costs.
//!
//! Three measurements:
//!
//! * **Overhead** — the disentangled suite, telemetry off vs on
//!   (interleaved repetitions, medians). "Off" must be within noise of a
//!   build without the instrumentation (claim 5 discipline: one relaxed
//!   load per emission site); "on" quantifies the always-on price.
//! * **Pause percentiles** — p50/p90/p99/max for LGC and CGC pauses on
//!   both suite classes, from the process-global histograms
//!   (`mpl-obs`), plus the per-phase breakdown.
//! * **Exporter artifacts** — one instrumented entangled run dumped as
//!   `results/telemetry_trace.json` (load in `chrome://tracing` or
//!   Perfetto) and `results/telemetry.prom` (Prometheus text format),
//!   exactly the documents `Runtime::telemetry_report` returns.
//!
//! The disentangled invariant is re-checked **with telemetry enabled**:
//! instrumentation must not perturb entanglement accounting (zero pins,
//! zero entangled accesses).
//!
//! `--smoke` runs single repetitions (CI: validates both exporter
//! documents without paying for the full sweep).

use std::time::Duration;

use mpl_bench::{fmt_dur, run_mpl, scale_bench, write_json, Table};
use mpl_obs::Metric;
use mpl_runtime::{Runtime, RuntimeConfig, Value};
use serde::Serialize;

#[derive(Serialize)]
struct OverheadRow {
    name: String,
    t_disabled_us: u128,
    t_enabled_us: u128,
    overhead: f64,
}

#[derive(Serialize)]
struct PauseRow {
    suite: String,
    metric: String,
    count: u64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    mean_ns: f64,
}

#[derive(Serialize)]
struct E10 {
    smoke: bool,
    reps: usize,
    overhead: Vec<OverheadRow>,
    median_overhead: f64,
    pauses: Vec<PauseRow>,
    trace_events: usize,
    sampler_samples: usize,
}

fn median(xs: &mut [Duration]) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn ns(d: Duration) -> String {
    fmt_dur(d)
}

/// Percentile rows for the metrics that matter per suite class, from the
/// current state of the global registry.
fn pause_rows(suite: &str, metrics: &[Metric], out: &mut Vec<PauseRow>, table: &mut Table) {
    for (metric, snap) in mpl_obs::metric_snapshots() {
        if !metrics.contains(&metric) {
            continue;
        }
        table.row(vec![
            suite.into(),
            metric.name().into(),
            snap.count.to_string(),
            ns(Duration::from_nanos(snap.p50())),
            ns(Duration::from_nanos(snap.p90())),
            ns(Duration::from_nanos(snap.p99())),
            ns(Duration::from_nanos(snap.max)),
        ]);
        out.push(PauseRow {
            suite: suite.into(),
            metric: metric.name().into(),
            count: snap.count,
            p50_ns: snap.p50(),
            p90_ns: snap.p90(),
            p99_ns: snap.p99(),
            max_ns: snap.max,
            mean_ns: snap.mean(),
        });
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 5 };
    println!(
        "E10: runtime telemetry — overhead, pause percentiles, exporters{}\n",
        if smoke { " (smoke)" } else { "" }
    );

    // ------------------------------------------------------------------
    // 1. Overhead: disentangled suite, telemetry off vs on, interleaved.
    // ------------------------------------------------------------------
    let mut overhead_table = Table::new(&["benchmark", "T off", "T on", "overhead"]);
    let mut overhead_rows = Vec::new();
    let mut overheads = Vec::new();
    for bench in mpl_bench_suite::all() {
        if bench.entangled() {
            continue;
        }
        let n = scale_bench(bench.as_ref());
        let mut off = Vec::with_capacity(reps);
        let mut on = Vec::with_capacity(reps);
        for _ in 0..reps {
            let base = run_mpl(bench.as_ref(), n, RuntimeConfig::managed());
            let tele = run_mpl(bench.as_ref(), n, RuntimeConfig::managed().with_telemetry());
            assert_eq!(base.checksum, tele.checksum, "{}", bench.name());
            // Telemetry must not perturb entanglement accounting.
            assert_eq!(
                tele.stats.pins,
                0,
                "{}: disentangled never pins (telemetry on)",
                bench.name()
            );
            assert_eq!(
                tele.stats.entangled_reads + tele.stats.entangled_writes,
                0,
                "{}: no entangled accesses (telemetry on)",
                bench.name()
            );
            off.push(base.wall);
            on.push(tele.wall);
        }
        let (t_off, t_on) = (median(&mut off), median(&mut on));
        let ovh = t_on.as_secs_f64() / t_off.as_secs_f64().max(1e-9) - 1.0;
        overheads.push(ovh);
        overhead_table.row(vec![
            bench.name().into(),
            ns(t_off),
            ns(t_on),
            format!("{:+.1}%", ovh * 100.0),
        ]);
        overhead_rows.push(OverheadRow {
            name: bench.name().into(),
            t_disabled_us: t_off.as_micros(),
            t_enabled_us: t_on.as_micros(),
            overhead: ovh,
        });
    }
    overheads.sort_by(f64::total_cmp);
    let median_overhead = overheads[overheads.len() / 2];
    println!("telemetry overhead (disentangled suite, median of {reps} interleaved reps):");
    print!("{}", overhead_table.render());
    println!("suite median overhead: {:+.1}%\n", median_overhead * 100.0);

    // ------------------------------------------------------------------
    // 2. Pause percentiles per suite class. The registry is process-
    //    global, so reset between phases isolates each class's profile.
    // ------------------------------------------------------------------
    let mut pause_table = Table::new(&["suite", "metric", "count", "p50", "p90", "p99", "max"]);
    let mut pause_rows_json = Vec::new();
    let gc_metrics = [
        Metric::LgcPause,
        Metric::LgcShield,
        Metric::LgcEvacuate,
        Metric::LgcReclaim,
        Metric::CgcPause,
        Metric::CgcMark,
        Metric::CgcSweep,
        Metric::CgcPacket,
    ];

    mpl_obs::reset_metrics();
    for bench in mpl_bench_suite::all() {
        if bench.entangled() {
            continue;
        }
        let n = scale_bench(bench.as_ref());
        run_mpl(bench.as_ref(), n, RuntimeConfig::managed().with_telemetry());
    }
    pause_rows(
        "disentangled",
        &gc_metrics,
        &mut pause_rows_json,
        &mut pause_table,
    );

    mpl_obs::reset_metrics();
    for bench in mpl_bench_suite::all() {
        if !bench.entangled() {
            continue;
        }
        let n = scale_bench(bench.as_ref());
        // CGC-pressure policy so the concurrent collector actually runs
        // (the default 1 MiB trigger rarely fires at suite scale).
        let mut cfg = RuntimeConfig::managed().with_telemetry();
        cfg.policy.cgc_trigger_pinned_bytes = 64 * 1024;
        run_mpl(bench.as_ref(), n, cfg);
    }
    pause_rows(
        "entangled",
        &gc_metrics,
        &mut pause_rows_json,
        &mut pause_table,
    );

    println!("GC pause/phase percentiles (telemetry histograms):");
    print!("{}", pause_table.render());

    // ------------------------------------------------------------------
    // 3. Exporter artifacts from one instrumented entangled run.
    // ------------------------------------------------------------------
    mpl_obs::reset_metrics();
    mpl_obs::clear_spans();
    let bench = mpl_bench_suite::by_name("dedup").expect("known benchmark");
    let n = scale_bench(bench.as_ref());
    let mut cfg = RuntimeConfig::managed().with_telemetry();
    cfg.policy.cgc_trigger_pinned_bytes = 64 * 1024;
    let rt = Runtime::new(cfg);
    let _ = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
    // Let the sampler take at least one observation of the finished heap.
    std::thread::sleep(Duration::from_millis(60));
    let report = rt.telemetry_report();
    let samples = rt.telemetry_samples().len();
    drop(rt);

    let trace_events = report.chrome_trace.matches("\"ph\":").count();
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(dir.join("telemetry_trace.json"), &report.chrome_trace);
    let _ = std::fs::write(dir.join("telemetry.prom"), &report.prometheus);
    println!(
        "\nexporters (dedup, n={n}): {trace_events} trace events, {samples} sampler samples, \
         {} prom lines",
        report.prometheus.lines().count()
    );
    assert!(
        report.chrome_trace.starts_with("{\"traceEvents\":["),
        "chrome trace shape"
    );
    assert!(
        report
            .prometheus
            .contains("# TYPE mpl_lgc_pause_seconds histogram"),
        "prometheus histograms present"
    );

    write_json(
        "e10_telemetry",
        &E10 {
            smoke,
            reps,
            overhead: overhead_rows,
            median_overhead,
            pauses: pause_rows_json,
            trace_events,
            sampler_samples: samples,
        },
    );
    println!(
        "wrote results/telemetry_trace.json, results/telemetry.prom, results/e10_telemetry.json"
    );
}
