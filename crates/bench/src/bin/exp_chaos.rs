//! E11 — Chaos: deterministic fault injection and memory-pressure
//! backpressure, and what the machinery costs when idle.
//!
//! Three measurements:
//!
//! * **Disabled cost** — the disentangled suite with (a) no failpoints
//!   and no heap limit (the baseline every other experiment measures),
//!   (b) a heap limit set far above the live footprint (the budget check
//!   runs on every allocation slow path, never binds), and (c) a
//!   failpoint plan armed at a never-firing threshold (every wired site
//!   takes the registry-scan path). (a)↔(b) must be within noise —
//!   claim-5 discipline for the pressure machinery; (c) prices an armed
//!   process.
//! * **Seeded chaos sweeps** — both suite classes under seeded random
//!   delay/yield schedules with phase audits on: checksums must match
//!   the native oracle, with zero corruption-canary traces, zero audit
//!   failures, and zero leaked pins. The same seed re-runs the same
//!   schedule (see the determinism proptest), so any failure here is
//!   reproducible from its printed seed.
//! * **Pressure ladder** — an over-budget run demonstrating the
//!   LGC→CGC→fail escalation and the recoverable `AllocError`, and a
//!   fitting run demonstrating forced-collection survival.
//!
//! `--smoke` runs single repetitions and the small problem sizes.

use std::time::Duration;

use mpl_bench::{fmt_dur, run_mpl, scale_bench, write_json, Table};
use mpl_runtime::{FailAction, FailPlan, FailWhen, Runtime, RuntimeConfig, Value};
use serde::Serialize;

#[derive(Serialize)]
struct CostRow {
    name: String,
    t_off_us: u128,
    t_limit_us: u128,
    t_armed_us: u128,
    limit_overhead: f64,
    armed_overhead: f64,
}

#[derive(Serialize)]
struct ChaosRow {
    suite: String,
    seed: u64,
    benchmarks: usize,
    failpoint_fires: u64,
    lgc_dead_traced: u64,
    audit_failures: u64,
}

#[derive(Serialize)]
struct E11 {
    smoke: bool,
    reps: usize,
    cost: Vec<CostRow>,
    median_limit_overhead: f64,
    median_armed_overhead: f64,
    chaos: Vec<ChaosRow>,
    pressure_gc_forced: u64,
    pressure_alloc_retries: u64,
    pressure_error: String,
}

fn median(xs: &mut [Duration]) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

/// A plan armed at every wired GC/sched site but thresholded so it never
/// fires: prices the registry-scan path, not the faults.
fn armed_idle_plan() -> FailPlan {
    let never = FailWhen::Nth(u64::MAX);
    FailPlan::new(0)
        .with("heap/alloc", FailAction::Yield, never)
        .with("heap/block_map", FailAction::Yield, never)
        .with("alloc/words", FailAction::Yield, never)
        .with("lgc/shield", FailAction::Yield, never)
        .with("lgc/evacuate", FailAction::Yield, never)
        .with("lgc/reclaim", FailAction::Yield, never)
        .with("sched/steal", FailAction::Yield, never)
        .with("sched/park", FailAction::Yield, never)
        .with("cancel/unwind", FailAction::Yield, never)
}

/// A seeded benign-fault schedule: delay/yield frequencies are drawn
/// from the seed, so each seed is a distinct (but reproducible) chaos
/// schedule.
fn chaos_plan(seed: u64) -> FailPlan {
    let k = |salt: u64| 2 + (seed.wrapping_mul(0x9e37_79b9).wrapping_add(salt) % 6);
    FailPlan::new(seed)
        .with(
            "lgc/shield",
            FailAction::Delay(40_000),
            FailWhen::OneIn(k(1)),
        )
        .with("lgc/evacuate", FailAction::Yield, FailWhen::OneIn(k(2)))
        .with(
            "lgc/retake",
            FailAction::Delay(15_000),
            FailWhen::OneIn(k(3)),
        )
        .with("cgc/mark", FailAction::Delay(25_000), FailWhen::OneIn(k(4)))
        .with("cgc/sweep", FailAction::Yield, FailWhen::OneIn(k(5)))
        .with(
            "barrier/read_slow",
            FailAction::Delay(4_000),
            FailWhen::OneIn(k(6)),
        )
        .with("sched/steal", FailAction::Yield, FailWhen::OneIn(k(7)))
        // Armed on every run; only fires if something actually cancels
        // (the suite sweeps run to completion, so this prices the site).
        .with(
            "cancel/unwind",
            FailAction::Delay(5_000),
            FailWhen::OneIn(k(8)),
        )
}

fn chaos_config(seed: u64, entangled: bool) -> RuntimeConfig {
    // `_exact`: chaos wants real interleavings even on small CI hosts.
    let mut cfg = RuntimeConfig::managed()
        .with_threads_exact(4)
        .with_audit()
        .with_failpoints(chaos_plan(seed))
        .with_gc_watchdog(Duration::from_secs(30));
    if entangled {
        // Make the concurrent collector actually run at suite scale.
        cfg.policy.cgc_trigger_pinned_bytes = 64 * 1024;
    }
    cfg
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 5 };
    println!(
        "E11: chaos — fault injection, memory pressure, disabled cost{}\n",
        if smoke { " (smoke)" } else { "" }
    );

    // ------------------------------------------------------------------
    // 1. Disabled cost: off vs heap-limit-set vs armed-idle, interleaved.
    // ------------------------------------------------------------------
    let mut cost_table =
        Table::new(&["benchmark", "T off", "T limit", "T armed", "limit", "armed"]);
    let mut cost_rows = Vec::new();
    let (mut limit_ovh, mut armed_ovh) = (Vec::new(), Vec::new());
    for bench in mpl_bench_suite::all() {
        if bench.entangled() {
            continue;
        }
        let n = scale_bench(bench.as_ref());
        let (mut off, mut lim, mut armed) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..reps {
            let a = run_mpl(bench.as_ref(), n, RuntimeConfig::managed());
            let b = run_mpl(
                bench.as_ref(),
                n,
                // Far above any suite benchmark's live footprint.
                RuntimeConfig::managed().with_heap_limit(8 << 30),
            );
            let c = run_mpl(
                bench.as_ref(),
                n,
                RuntimeConfig::managed().with_failpoints(armed_idle_plan()),
            );
            assert_eq!(a.checksum, b.checksum, "{}", bench.name());
            assert_eq!(a.checksum, c.checksum, "{}", bench.name());
            assert_eq!(
                b.stats.alloc_failures,
                0,
                "{}: limit never binds",
                bench.name()
            );
            off.push(a.wall);
            lim.push(b.wall);
            armed.push(c.wall);
        }
        let (t_off, t_lim, t_armed) = (median(&mut off), median(&mut lim), median(&mut armed));
        let lo = t_lim.as_secs_f64() / t_off.as_secs_f64().max(1e-9) - 1.0;
        let ao = t_armed.as_secs_f64() / t_off.as_secs_f64().max(1e-9) - 1.0;
        limit_ovh.push(lo);
        armed_ovh.push(ao);
        cost_table.row(vec![
            bench.name().into(),
            fmt_dur(t_off),
            fmt_dur(t_lim),
            fmt_dur(t_armed),
            format!("{:+.1}%", lo * 100.0),
            format!("{:+.1}%", ao * 100.0),
        ]);
        cost_rows.push(CostRow {
            name: bench.name().into(),
            t_off_us: t_off.as_micros(),
            t_limit_us: t_lim.as_micros(),
            t_armed_us: t_armed.as_micros(),
            limit_overhead: lo,
            armed_overhead: ao,
        });
    }
    limit_ovh.sort_by(f64::total_cmp);
    armed_ovh.sort_by(f64::total_cmp);
    let median_limit_overhead = limit_ovh[limit_ovh.len() / 2];
    let median_armed_overhead = armed_ovh[armed_ovh.len() / 2];
    println!("disabled-mode cost (disentangled suite, median of {reps} interleaved reps):");
    print!("{}", cost_table.render());
    println!(
        "suite median: heap-limit {:+.1}%, armed-idle failpoints {:+.1}%\n",
        median_limit_overhead * 100.0,
        median_armed_overhead * 100.0
    );

    // ------------------------------------------------------------------
    // 2. Seeded chaos sweeps, audits on. Fixed seeds 1..=3, plus one
    //    from the low bits of the clock, printed for reproduction.
    // ------------------------------------------------------------------
    let wild = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_micros() as u64)
        .unwrap_or(4);
    let seeds: &[u64] = if smoke { &[1, wild] } else { &[1, 2, 3, wild] };
    let mut chaos_table = Table::new(&[
        "suite",
        "seed",
        "benchmarks",
        "fires",
        "dead",
        "audit fails",
    ]);
    let mut chaos_rows = Vec::new();
    for &(suite, entangled) in &[("disentangled", false), ("entangled", true)] {
        for &seed in seeds {
            let audit_before = mpl_gc::audit::counters();
            let fires_before = mpl_fail::fires();
            let mut benchmarks = 0usize;
            let mut dead = 0u64;
            for bench in mpl_bench_suite::all() {
                if bench.entangled() != entangled {
                    continue;
                }
                let n = if smoke {
                    bench.small_n()
                } else {
                    bench.small_n().max(bench.default_n() / 8)
                };
                let out = run_mpl(bench.as_ref(), n, chaos_config(seed, entangled));
                assert_eq!(
                    out.checksum,
                    bench.run_native(n),
                    "{} seed {seed}: checksum under chaos",
                    bench.name()
                );
                assert_eq!(
                    out.stats.pinned_bytes,
                    0,
                    "{} seed {seed}: leaked pins",
                    bench.name()
                );
                dead += out.stats.lgc_dead_traced;
                benchmarks += 1;
            }
            let audit = mpl_gc::audit::counters();
            let audit_failures = audit.failures - audit_before.failures;
            let fires = mpl_fail::fires() - fires_before;
            assert_eq!(dead, 0, "seed {seed}: corruption canary");
            assert_eq!(audit_failures, 0, "seed {seed}: phase audits");
            chaos_table.row(vec![
                suite.into(),
                seed.to_string(),
                benchmarks.to_string(),
                fires.to_string(),
                dead.to_string(),
                audit_failures.to_string(),
            ]);
            chaos_rows.push(ChaosRow {
                suite: suite.into(),
                seed,
                benchmarks,
                failpoint_fires: fires,
                lgc_dead_traced: dead,
                audit_failures,
            });
        }
    }
    println!("seeded chaos sweeps (audits on; seed {wild} drawn from the clock):");
    print!("{}", chaos_table.render());

    // ------------------------------------------------------------------
    // 3. The pressure ladder: an over-budget run fails recoverably, a
    //    fitting run survives its forced collections.
    // ------------------------------------------------------------------
    let rt = Runtime::new(RuntimeConfig::managed().with_heap_limit(128 * 1024));
    // The AllocError below is the point; keep its panic report off stderr.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = rt
        .try_run(|m| {
            let mut list = m.alloc_tuple(&[Value::Unit]);
            let mut h = m.root(list);
            loop {
                list = m.alloc_tuple(&[Value::Int(1), m.get(&h)]);
                h = m.root(list);
            }
        })
        .expect_err("an unbounded retained allocation must exhaust the budget");
    std::panic::set_hook(hook);
    let s = rt.stats();
    println!(
        "\npressure ladder (128 KiB budget): {err}\n  gc_forced_by_pressure={} alloc_retries={} alloc_failures={}",
        s.gc_forced_by_pressure, s.alloc_retries, s.alloc_failures
    );
    assert!(s.gc_forced_by_pressure >= 2, "LGC then CGC forced");
    assert_eq!(s.alloc_failures, 1);
    drop(rt);
    // And the recoverability acceptance: a fresh runtime passes a
    // benchmark right after the failure.
    let bench = mpl_bench_suite::by_name("msort").expect("known benchmark");
    let n = bench.small_n();
    let fresh = run_mpl(bench.as_ref(), n, RuntimeConfig::managed());
    assert_eq!(
        fresh.checksum,
        bench.run_native(n),
        "fresh runtime after AllocError"
    );

    write_json(
        "e11_chaos",
        &E11 {
            smoke,
            reps,
            cost: cost_rows,
            median_limit_overhead,
            median_armed_overhead,
            chaos: chaos_rows,
            pressure_gc_forced: s.gc_forced_by_pressure,
            pressure_alloc_retries: s.alloc_retries,
            pressure_error: err.to_string(),
        },
    );
    println!("wrote results/e11_chaos.json");
}
