//! E3 — Speedup curves: simulated `T_1/T_P` for P ∈ {1,2,4,8,16,32,64}
//! over the recorded computation DAGs (the paper's scalability figure),
//! plus **real-execution** speedup on the persistent work-stealing pool
//! for a smaller processor sweep.
//!
//! The simulation section is deterministic and host-independent; the
//! real-execution section measures actual wall clock on this machine and
//! reports the executor's steal counters, so its numbers are only
//! meaningful when the host has at least as many cores as workers (the
//! host's parallelism is printed alongside).

use mpl_bench::{fmt_dur, run_mpl, scale_bench, write_json, Table};
use mpl_runtime::{sweep, RuntimeConfig, SchedMode};
use serde::Serialize;

const PROCS: &[usize] = &[1, 2, 4, 8, 16, 32, 64];
const SELECTED: &[&str] = &[
    "fib",
    "msort",
    "primes",
    "tokens",
    "quickhull",
    "nbody",
    "bfs",
    "dedup",
    "unionfind",
    "memo",
];

/// Real-execution sweep: disentangled divide-and-conquer benches with
/// enough work per fork to amortize scheduling.
const REAL_PROCS: &[usize] = &[1, 2, 4, 8];
const REAL_SELECTED: &[&str] = &["fib", "msort", "mcss"];

#[derive(Serialize)]
struct Series {
    name: String,
    procs: Vec<usize>,
    speedup: Vec<f64>,
    steals: Vec<u64>,
    work: u64,
    span: u64,
}

#[derive(Serialize)]
struct RealSeries {
    name: String,
    n: usize,
    host_parallelism: usize,
    procs: Vec<usize>,
    wall_us: Vec<u128>,
    speedup: Vec<f64>,
    steals: Vec<u64>,
    sequentialized: Vec<u64>,
    pushes: Vec<u64>,
}

fn simulated() -> Vec<Series> {
    println!("E3a: simulated speedup curves (work-stealing over recorded DAGs)\n");
    let mut header = vec!["benchmark"];
    let proc_labels: Vec<String> = PROCS.iter().map(|p| format!("P={p}")).collect();
    header.extend(proc_labels.iter().map(|s| s.as_str()));
    header.push("steals@64");
    let mut table = Table::new(&header);
    let mut all = Vec::new();
    for name in SELECTED {
        let bench = mpl_bench_suite::by_name(name).expect("known benchmark");
        let n = scale_bench(bench.as_ref());
        let run = run_mpl(bench.as_ref(), n, RuntimeConfig::managed().with_dag());
        let dag = run.dag.expect("dag");
        let series = sweep(&dag, PROCS, 8, 7);
        let t1 = series[0].1.time as f64;
        let speedups: Vec<f64> = series
            .iter()
            .map(|(_, r)| t1 / r.time.max(1) as f64)
            .collect();
        let steals: Vec<u64> = series.iter().map(|(_, r)| r.steals).collect();
        let mut row = vec![name.to_string()];
        row.extend(speedups.iter().map(|s| format!("{s:.1}x")));
        row.push(steals.last().copied().unwrap_or(0).to_string());
        table.row(row);
        all.push(Series {
            name: name.to_string(),
            procs: PROCS.to_vec(),
            speedup: speedups,
            steals,
            work: dag.total_work(),
            span: dag.span(),
        });
    }
    print!("{}", table.render());
    all
}

fn real_execution() -> Vec<RealSeries> {
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "\nE3b: real-execution speedup on the work-stealing pool \
         (host parallelism: {host})\n"
    );
    let mut header = vec!["benchmark".to_string(), "n".to_string()];
    for p in REAL_PROCS {
        header.push(format!("T@{p}"));
    }
    for p in REAL_PROCS {
        header.push(format!("S@{p}"));
    }
    header.push("steals@8".to_string());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    let mut all = Vec::new();
    for name in REAL_SELECTED {
        let bench = mpl_bench_suite::by_name(name).expect("known benchmark");
        let n = scale_bench(bench.as_ref());
        let mut walls = Vec::new();
        let mut steals = Vec::new();
        let mut sequentialized = Vec::new();
        let mut pushes = Vec::new();
        for &p in REAL_PROCS {
            // `with_threads_exact`: the sweep deliberately runs every
            // width even on small hosts — on an undersized host the
            // wide points measure oversubscription, which the printed
            // host parallelism makes visible.
            let cfg = RuntimeConfig::managed()
                .with_threads_exact(p)
                .with_sched(SchedMode::WorkStealing);
            // Median of three (wall-clock on shared hosts is noisy).
            let mut runs: Vec<_> = (0..3).map(|_| run_mpl(bench.as_ref(), n, cfg)).collect();
            runs.sort_by_key(|r| r.wall);
            let run = runs.swap_remove(1);
            walls.push(run.wall);
            steals.push(run.stats.sched_steals);
            sequentialized.push(run.stats.sched_sequentialized);
            pushes.push(run.stats.sched_pushes);
        }
        let t1 = walls[0].as_secs_f64();
        let speedups: Vec<f64> = walls
            .iter()
            .map(|w| t1 / w.as_secs_f64().max(1e-9))
            .collect();
        let mut row = vec![name.to_string(), n.to_string()];
        row.extend(walls.iter().map(|w| fmt_dur(*w)));
        row.extend(speedups.iter().map(|s| format!("{s:.1}x")));
        row.push(steals.last().copied().unwrap_or(0).to_string());
        table.row(row);
        all.push(RealSeries {
            name: name.to_string(),
            n,
            host_parallelism: host,
            procs: REAL_PROCS.to_vec(),
            wall_us: walls.iter().map(|w| w.as_micros()).collect(),
            speedup: speedups,
            steals,
            sequentialized,
            pushes,
        });
    }
    print!("{}", table.render());
    all
}

#[derive(Serialize)]
struct Output {
    simulated: Vec<Series>,
    real: Vec<RealSeries>,
}

fn main() {
    let simulated = simulated();
    let real = real_execution();
    write_json("e3_speedup", &Output { simulated, real });
    println!("\nwrote results/e3_speedup.json");
}
