//! E3 — Speedup curves: simulated `T_1/T_P` for P ∈ {1,2,4,8,16,32,64}
//! over the recorded computation DAGs (the paper's scalability figure).

use mpl_bench::{run_mpl, scale_bench, write_json, Table};
use mpl_runtime::{sweep, RuntimeConfig};
use serde::Serialize;

const PROCS: &[usize] = &[1, 2, 4, 8, 16, 32, 64];
const SELECTED: &[&str] = &[
    "fib", "msort", "primes", "tokens", "quickhull", "nbody", "bfs", "dedup", "unionfind", "memo",
];

#[derive(Serialize)]
struct Series {
    name: String,
    procs: Vec<usize>,
    speedup: Vec<f64>,
    steals: Vec<u64>,
    work: u64,
    span: u64,
}

fn main() {
    println!("E3: simulated speedup curves (work-stealing over recorded DAGs)\n");
    let mut header = vec!["benchmark"];
    let proc_labels: Vec<String> = PROCS.iter().map(|p| format!("P={p}")).collect();
    header.extend(proc_labels.iter().map(|s| s.as_str()));
    header.push("steals@64");
    let mut table = Table::new(&header);
    let mut all = Vec::new();
    for name in SELECTED {
        let bench = mpl_bench_suite::by_name(name).expect("known benchmark");
        let n = scale_bench(bench.as_ref());
        let run = run_mpl(bench.as_ref(), n, RuntimeConfig::managed().with_dag());
        let dag = run.dag.expect("dag");
        let series = sweep(&dag, PROCS, 8, 7);
        let t1 = series[0].1.time as f64;
        let speedups: Vec<f64> = series.iter().map(|(_, r)| t1 / r.time.max(1) as f64).collect();
        let steals: Vec<u64> = series.iter().map(|(_, r)| r.steals).collect();
        let mut row = vec![name.to_string()];
        row.extend(speedups.iter().map(|s| format!("{s:.1}x")));
        row.push(steals.last().copied().unwrap_or(0).to_string());
        table.row(row);
        all.push(Series {
            name: name.to_string(),
            procs: PROCS.to_vec(),
            speedup: speedups,
            steals,
            work: dag.total_work(),
            span: dag.span(),
        });
    }
    print!("{}", table.render());
    write_json("e3_speedup", &all);
    println!("\nwrote results/e3_speedup.json");
}
