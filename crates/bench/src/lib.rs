//! # mpl-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index E1–E9). This library holds the shared measurement
//! plumbing: running a suite benchmark on each runtime with wall-clock and
//! counter capture, and rendering aligned tables plus JSON result files.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

use serde::Serialize;

use mpl_baselines::{GValue, GlobalRuntime, SeqRuntime, SeqStats};
use mpl_bench_suite::Benchmark;
use mpl_runtime::{Dag, Runtime, RuntimeConfig, StatsSnapshot, Value};

/// A measured run on the entanglement-managed runtime.
#[derive(Debug)]
pub struct MplRun {
    /// Benchmark checksum (must match the oracle).
    pub checksum: i64,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Runtime counters after the run.
    pub stats: StatsSnapshot,
    /// Recorded DAG, when requested.
    pub dag: Option<Dag>,
}

/// Runs a benchmark on the managed runtime under `cfg`.
pub fn run_mpl(bench: &dyn Benchmark, n: usize, cfg: RuntimeConfig) -> MplRun {
    let rt = Runtime::new(cfg);
    let start = Instant::now();
    let checksum = rt.run(|m| Value::Int(bench.run_mpl(m, n))).expect_int();
    let wall = start.elapsed();
    MplRun {
        checksum,
        wall,
        stats: rt.stats(),
        dag: rt.take_dag(),
    }
}

/// A measured run on the sequential baseline.
#[derive(Debug)]
pub struct SeqRun {
    /// Benchmark checksum.
    pub checksum: i64,
    /// Wall-clock time.
    pub wall: Duration,
    /// Baseline counters.
    pub stats: SeqStats,
}

/// Runs a benchmark on the sequential baseline (MLton stand-in).
pub fn run_seq(bench: &dyn Benchmark, n: usize) -> SeqRun {
    let mut rt = SeqRuntime::default();
    let start = Instant::now();
    let checksum = bench.run_seq(&mut rt, n);
    SeqRun {
        checksum,
        wall: start.elapsed(),
        stats: rt.stats(),
    }
}

/// Runs the native (plain Rust) implementation.
pub fn run_native(bench: &dyn Benchmark, n: usize) -> (i64, Duration) {
    let start = Instant::now();
    let checksum = bench.run_native(n);
    (checksum, start.elapsed())
}

/// Runs on the global-heap runtime, if the benchmark supports it.
pub fn run_global(
    bench: &dyn Benchmark,
    n: usize,
    threads: usize,
) -> Option<(i64, Duration, mpl_baselines::GlobalStats)> {
    let rt = GlobalRuntime::new(1024 * 1024, threads);
    let start = Instant::now();
    let checksum = rt.run(|m| match bench.run_global(m, n) {
        Some(c) => GValue::Int(c),
        None => GValue::Unit,
    });
    let wall = start.elapsed();
    match checksum {
        GValue::Int(c) => Some((c, wall, rt.stats())),
        _ => None,
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

/// Formats a byte count in adaptive units.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.2}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

/// A minimal fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let mut line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(c);
                let pad = widths[i] + 2 - c.chars().count();
                s.push_str(&" ".repeat(pad));
            }
            out.push_str(s.trim_end());
            out.push('\n');
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&sep);
        for row in &self.rows {
            line(row);
        }
        out
    }
}

/// Writes experiment results as JSON under `results/`.
pub fn write_json<T: Serialize>(experiment: &str, payload: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{experiment}.json"));
    if let Ok(json) = serde_json::to_string_pretty(payload) {
        let _ = std::fs::write(path, json);
    }
}

/// Scales a benchmark's default size by `MPL_SCALE`, honoring each
/// benchmark's own scaling law (linear vs exponential cost).
pub fn scale_bench(bench: &dyn Benchmark) -> usize {
    match std::env::var("MPL_SCALE") {
        Ok(s) => {
            let pct: usize = s.parse().unwrap_or(100);
            bench.scaled_n(pct)
        }
        Err(_) => bench.default_n(),
    }
}

/// Scales problem sizes by the `MPL_SCALE` environment variable
/// (percentage; `MPL_SCALE=25` quarters every workload). Keeps CI quick
/// while allowing full-size runs.
pub fn scaled(n: usize) -> usize {
    match std::env::var("MPL_SCALE") {
        Ok(s) => {
            let pct: usize = s.parse().unwrap_or(100);
            (n * pct / 100).max(4)
        }
        Err(_) => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn harness_runs_a_benchmark_everywhere() {
        let bench = mpl_bench_suite::by_name("fib").unwrap();
        let n = bench.small_n();
        let (native, _) = run_native(bench.as_ref(), n);
        let mpl = run_mpl(bench.as_ref(), n, RuntimeConfig::managed());
        let seq = run_seq(bench.as_ref(), n);
        assert_eq!(mpl.checksum, native);
        assert_eq!(seq.checksum, native);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(512), "512B");
        assert!(fmt_bytes(2048).contains("KiB"));
        assert!(fmt_dur(Duration::from_micros(500)).contains("µs"));
        assert!(fmt_dur(Duration::from_millis(5)).contains("ms"));
    }
}
