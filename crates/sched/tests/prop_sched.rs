//! Property tests for the scheduler: random series-parallel DAGs must
//! respect the classic work/span laws under the virtual-time simulation.

use proptest::prelude::*;

use mpl_sched::{simulate, Dag, DagBuilder, SimParams, StrandId};

/// A random series-parallel computation: a recursive shape with work
/// sprinkled on every strand.
#[derive(Clone, Debug)]
enum Shape {
    Leaf(u64),
    Fork(Box<Shape>, Box<Shape>, u64, u64),
}

fn shape(depth: u32) -> BoxedStrategy<Shape> {
    let leaf = (0u64..200).prop_map(Shape::Leaf);
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        3 => leaf,
        2 => (shape(depth - 1), shape(depth - 1), 0u64..50, 0u64..50)
            .prop_map(|(l, r, pre, post)| Shape::Fork(Box::new(l), Box::new(r), pre, post)),
    ]
    .boxed()
}

fn realize(b: &DagBuilder, cur: StrandId, s: &Shape) -> StrandId {
    match s {
        Shape::Leaf(w) => {
            b.add_work(cur, *w);
            cur
        }
        Shape::Fork(l, r, pre, post) => {
            b.add_work(cur, *pre);
            let (ls, rs) = b.fork(cur);
            let le = realize(b, ls, l);
            let re = realize(b, rs, r);
            let j = b.join(le, re);
            b.add_work(j, *post);
            j
        }
    }
}

fn build(s: &Shape) -> Dag {
    let (b, root) = DagBuilder::new();
    realize(&b, root, s);
    b.finish()
}

/// Oracle work/span straight off the shape.
fn oracle(s: &Shape) -> (u64, u64) {
    match s {
        Shape::Leaf(w) => (*w, *w),
        Shape::Fork(l, r, pre, post) => {
            let (lw, ls) = oracle(l);
            let (rw, rs) = oracle(r);
            (pre + lw + rw + post, pre + ls.max(rs) + post)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Work and span computed by the DAG match the structural oracle.
    #[test]
    fn work_and_span_match_oracle(s in shape(5)) {
        let dag = build(&s);
        let (w, sp) = oracle(&s);
        prop_assert_eq!(dag.total_work(), w);
        prop_assert_eq!(dag.span(), sp);
    }

    /// The simulation respects the work and span laws:
    /// `T_1 = W`, `T_P >= W/P`, `T_P >= S`, and the greedy upper bound
    /// with steal overhead `T_P <= W/P + c·(S + overhead·depth)` holds
    /// with generous slack.
    #[test]
    fn simulation_respects_laws(s in shape(5), procs in 1usize..16, seed in 0u64..1000) {
        let dag = build(&s);
        let w = dag.total_work();
        let span = dag.span();
        let params = SimParams { procs, steal_overhead: 4, seed };
        let r = simulate(&dag, params);
        prop_assert_eq!(r.executed, dag.len());
        if procs == 1 {
            prop_assert_eq!(r.time, w, "one processor executes exactly the work");
            prop_assert_eq!(r.steals, 0);
        }
        prop_assert!(r.time >= w.div_ceil(procs as u64), "work law");
        prop_assert!(r.time >= span, "span law");
        // Steal overhead can add at most `overhead` per executed strand.
        let upper = w / procs as u64 + span + 4 * dag.len() as u64 + 1;
        prop_assert!(r.time <= upper, "greedy bound: {} > {}", r.time, upper);
    }

    /// Determinism: identical parameters give identical schedules.
    #[test]
    fn simulation_is_deterministic(s in shape(4), procs in 1usize..8, seed in 0u64..100) {
        let dag = build(&s);
        let params = SimParams { procs, steal_overhead: 8, seed };
        prop_assert_eq!(simulate(&dag, params), simulate(&dag, params));
    }

    /// More processors never increase the no-overhead completion time.
    #[test]
    fn scaling_is_monotone_without_overhead(s in shape(4), seed in 0u64..100) {
        let dag = build(&s);
        let mut last = u64::MAX;
        for procs in [1usize, 2, 4, 8, 16] {
            let r = simulate(&dag, SimParams { procs, steal_overhead: 0, seed });
            prop_assert!(
                r.time <= last,
                "P={} took {} > previous {}",
                procs, r.time, last
            );
            last = r.time;
        }
    }
}
