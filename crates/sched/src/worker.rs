//! Worker-side machinery of the work-stealing executor: stack jobs, the
//! per-thread worker context, the fork-join wait protocol, and the
//! background worker loop.
//!
//! # Safety architecture
//!
//! A forked branch is represented by a [`StackJob`] that lives in the
//! forking caller's stack frame; the deque holds a type-erased pointer
//! to it ([`JobRef`]). This is sound because [`WorkerCtx::join`] never
//! returns until the job's latch is set — either the owner popped the
//! job back and ran it inline, or a thief ran it and set the latch — so
//! the pointee outlives every access. The same argument erases the
//! closure's borrow lifetimes (branches borrow the runtime), which is
//! why the unsafe code is confined to this module behind the safe
//! [`WorkerCtx::join`] / [`try_join`] API.

use std::cell::{Cell, UnsafeCell};
use std::panic::{self, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

use crossbeam_deque::{Steal, Worker as Deque};
use crossbeam_utils::Backoff;

use crate::executor::{Executor, Shared};

/// How long an idle worker sleeps between work re-checks once its
/// exponential backoff is exhausted. Short enough that a missed wakeup
/// (the push/park race window) costs microseconds, long enough that a
/// quiescent pool burns no meaningful CPU. Public so the telemetry
/// sampler can convert park counts into an idle-time estimate.
pub const PARK_INTERVAL: Duration = Duration::from_micros(100);

// ---- jobs ----------------------------------------------------------------

/// Type-erased pointer to a [`StackJob`] living in some caller's stack
/// frame. `Send` because the pointee is `Sync`-by-construction (all
/// mutation goes through its `UnsafeCell`s under the once-only execute
/// protocol) and outlives the reference (see module docs).
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

unsafe impl Send for JobRef {}

impl JobRef {
    /// Identity of the underlying job (its address), used by the owner
    /// to recognize its own popped-back branch.
    pub(crate) fn id(&self) -> usize {
        self.data as usize
    }

    /// Runs the job.
    ///
    /// # Safety
    ///
    /// The underlying [`StackJob`] must still be alive and not yet
    /// executed. Both are guaranteed by the join protocol: each job is
    /// taken from a deque exactly once, and the pushing frame blocks in
    /// `join` until the latch is set.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.data)
    }
}

/// Set exactly once when a job finishes; wakes the owner.
struct Latch {
    done: AtomicBool,
    owner: thread::Thread,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            done: AtomicBool::new(false),
            owner: thread::current(),
        }
    }

    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn set(&self) {
        self.done.store(true, Ordering::Release);
        self.owner.unpark();
    }
}

/// A fork branch allocated in the forking caller's stack frame.
struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> StackJob<F, R> {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
        }
    }

    /// # Safety
    ///
    /// The returned reference must be executed at most once, before
    /// `self` is dropped.
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const StackJob<F, R> as *const (),
            execute_fn: execute_stack_job::<F, R>,
        }
    }

    /// # Safety
    ///
    /// Only after the latch is set.
    unsafe fn take_result(&self) -> thread::Result<R> {
        (*self.result.get())
            .take()
            .expect("latch set without a stored result")
    }
}

unsafe fn execute_stack_job<F, R>(data: *const ())
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    let job = &*(data as *const StackJob<F, R>);
    let f = (*job.f.get()).take().expect("stack job executed twice");
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    *job.result.get() = Some(result);
    job.latch.set();
}

// ---- per-thread worker context -------------------------------------------

thread_local! {
    /// The worker context installed on this thread, if any. A raw
    /// pointer (rather than an owning cell) because `join` re-enters
    /// `with_current` from nested forks while the outer borrow is live.
    static CURRENT: Cell<*const WorkerCtx> = const { Cell::new(ptr::null()) };
}

/// One worker's scheduling state: its deque, its view of the pool, and
/// a private RNG for victim selection.
pub struct WorkerCtx {
    shared: Arc<Shared>,
    index: usize,
    deque: Deque<JobRef>,
    rng: Cell<u64>,
}

impl WorkerCtx {
    fn new(shared: Arc<Shared>, index: usize, deque: Deque<JobRef>) -> WorkerCtx {
        WorkerCtx {
            shared,
            index,
            deque,
            // Distinct odd seed per worker; quality hardly matters for
            // victim selection, independence across workers does.
            rng: Cell::new((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
        }
    }

    /// This worker's index in the pool (0 is the driver).
    pub fn index(&self) -> usize {
        self.index
    }

    fn next_rand(&self) -> u64 {
        // SplitMix64.
        let s = self.rng.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.rng.set(s);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn push(&self, job: JobRef) {
        self.deque.push(job);
        self.shared.stats.pushes.fetch_add(1, Ordering::Relaxed);
        self.shared.notify_one();
    }

    /// Takes work: own deque (LIFO), then the injector, then a randomly
    /// rotated sweep over the other workers' deques (FIFO steals).
    fn find_job(&self) -> Option<JobRef> {
        if let Some(job) = self.deque.pop() {
            return Some(job);
        }
        self.steal_job()
    }

    fn steal_job(&self) -> Option<JobRef> {
        mpl_fail::hit_hard("sched/steal");
        // Steal latency (first probe to job-in-hand) is only recorded for
        // *successful* steals; a sweep that comes up empty is idleness,
        // accounted by the park span instead.
        let span = mpl_obs::span_start();
        loop {
            match self.shared.injector.steal() {
                Steal::Success(job) => {
                    self.shared.stats.steals.fetch_add(1, Ordering::Relaxed);
                    mpl_obs::span_close(mpl_obs::Metric::SchedSteal, span);
                    return Some(job);
                }
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        let n = self.shared.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = self.next_rand() as usize % n;
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == self.index {
                continue;
            }
            loop {
                match self.shared.stealers[victim].steal() {
                    Steal::Success(job) => {
                        self.shared.stats.steals.fetch_add(1, Ordering::Relaxed);
                        mpl_obs::span_close(mpl_obs::Metric::SchedSteal, span);
                        return Some(job);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    /// Help-first fork-join: pushes `b` onto this worker's deque, runs
    /// `a` inline, then resolves `b` — popping it back and running it
    /// inline if nobody stole it, otherwise working (own deque, then
    /// steals) while waiting for the thief's latch, parking briefly when
    /// the whole pool is out of work.
    ///
    /// Panics in either branch propagate to the caller after *both*
    /// branches have finished, so no stack job outlives its frame.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let job_b = StackJob::new(b);
        // Safety: resolved below before `job_b` drops — the loop does
        // not exit until the latch is set.
        let b_ref = unsafe { job_b.as_job_ref() };
        let b_id = b_ref.id();
        self.push(b_ref);

        let ra = panic::catch_unwind(AssertUnwindSafe(a));

        let backoff = Backoff::new();
        while !job_b.latch.probe() {
            // Own deque first: if `b` is still here it is resolved on
            // the spot (the sequentialized-fork fast path). Anything
            // else found here is a shallower branch of our own spine,
            // safe to run inline while we wait.
            if let Some(job) = self.deque.pop() {
                let popped_b = job.id() == b_id;
                if popped_b {
                    self.shared
                        .stats
                        .sequentialized
                        .fetch_add(1, Ordering::Relaxed);
                }
                // Safety: taken from a deque exactly once; pusher still
                // blocked in its own join.
                let span = mpl_obs::span_start();
                unsafe { job.execute() };
                mpl_obs::span_close(mpl_obs::Metric::SchedRun, span);
                run_job_finish_hook(self.index);
                if popped_b {
                    break;
                }
                backoff.reset();
                continue;
            }
            // `b` was stolen: help rather than spin.
            if let Some(job) = self.steal_job() {
                // Safety: as above.
                let span = mpl_obs::span_start();
                unsafe { job.execute() };
                mpl_obs::span_close(mpl_obs::Metric::SchedRun, span);
                run_job_finish_hook(self.index);
                backoff.reset();
                continue;
            }
            if backoff.is_completed() {
                mpl_fail::hit_hard("sched/park");
                self.shared.stats.parks.fetch_add(1, Ordering::Relaxed);
                let span = mpl_obs::span_start();
                thread::park_timeout(PARK_INTERVAL);
                mpl_obs::span_close(mpl_obs::Metric::SchedPark, span);
            } else {
                backoff.snooze();
            }
        }

        // Safety: latch observed set.
        let rb = unsafe { job_b.take_result() };
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(p), _) => panic::resume_unwind(p),
            (_, Err(p)) => panic::resume_unwind(p),
        }
    }
}

/// Runs `a` and `b` as a potentially parallel fork-join on the calling
/// thread's worker, or hands both closures back (`Err`) if the calling
/// thread is not a pool worker so the caller can run them sequentially.
pub fn try_join<A, B, RA, RB>(a: A, b: B) -> Result<(RA, RB), (A, B)>
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    CURRENT.with(|c| {
        let p = c.get();
        if p.is_null() {
            Err((a, b))
        } else {
            // Safety: the pointee is kept alive by `TlsGuard`/
            // `DriverGuard`, which clear the pointer before dropping it.
            Ok(unsafe { &*p }.join(a, b))
        }
    })
}

/// True if the calling thread currently has a worker context installed.
pub fn on_worker_thread() -> bool {
    CURRENT.with(|c| !c.get().is_null())
}

/// Hook invoked with the worker's pool index whenever a thread takes a
/// worker role: each background worker at the top of its loop, and the
/// driver thread each time it installs itself as worker 0. The runtime
/// uses it to register worker-local diagnostic state (e.g. the GC audit
/// layer's per-worker event rings) without this crate depending on any
/// of it. First [`set_worker_start_hook`] wins; later calls are ignored.
static WORKER_START_HOOK: OnceLock<fn(usize)> = OnceLock::new();

/// Installs the process-wide worker-start hook (see
/// [`WORKER_START_HOOK`]). Idempotent for the same function; a second,
/// different hook is ignored.
pub fn set_worker_start_hook(hook: fn(usize)) {
    let _ = WORKER_START_HOOK.set(hook);
}

fn run_worker_start_hook(index: usize) {
    // Telemetry worker registration is invoked directly (not via the
    // OnceLock hook, which the runtime already claims for the GC audit
    // layer's per-worker rings): pin this worker's spans to its own
    // timeline track.
    mpl_obs::register_worker(index);
    if let Some(hook) = WORKER_START_HOOK.get() {
        hook(index);
    }
}

/// Hook invoked with the worker's pool index after each job the worker
/// finishes executing (both jobs run from `WorkerCtx::join`'s help loop
/// and jobs run from the background worker loop). The runtime uses it to
/// mark task boundaries in diagnostic traces — job completion is a
/// natural safepoint — without this crate depending on any of it. First
/// [`set_job_finish_hook`] wins; later calls are ignored.
static JOB_FINISH_HOOK: OnceLock<fn(usize)> = OnceLock::new();

/// Installs the process-wide job-finish hook (see [`JOB_FINISH_HOOK`]).
/// Idempotent for the same function; a second, different hook is
/// ignored.
pub fn set_job_finish_hook(hook: fn(usize)) {
    let _ = JOB_FINISH_HOOK.set(hook);
}

fn run_job_finish_hook(index: usize) {
    if let Some(hook) = JOB_FINISH_HOOK.get() {
        hook(index);
    }
}

/// Restores the previous TLS pointer on drop.
struct TlsGuard {
    prev: *const WorkerCtx,
}

impl TlsGuard {
    fn install(ctx: &WorkerCtx) -> TlsGuard {
        let prev = CURRENT.with(|c| c.replace(ctx as *const WorkerCtx));
        TlsGuard { prev }
    }
}

impl Drop for TlsGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Installs the calling thread as the pool's worker 0 (the driver) for
/// the guard's lifetime; returns the deque to the pool on drop.
pub struct DriverGuard<'e> {
    exec: &'e Executor,
    ctx: Option<Box<WorkerCtx>>,
    prev: *const WorkerCtx,
}

impl<'e> DriverGuard<'e> {
    pub(crate) fn install(exec: &'e Executor, deque: Deque<JobRef>) -> DriverGuard<'e> {
        run_worker_start_hook(0);
        let ctx = Box::new(WorkerCtx::new(Arc::clone(exec.shared()), 0, deque));
        let prev = CURRENT.with(|c| c.replace(&*ctx as *const WorkerCtx));
        DriverGuard {
            exec,
            ctx: Some(ctx),
            prev,
        }
    }
}

impl Drop for DriverGuard<'_> {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
        let ctx = self.ctx.take().expect("driver context dropped twice");
        self.exec.return_driver(ctx.deque);
    }
}

/// The background worker loop: drain available work, then park with
/// exponential backoff until pushed work (or shutdown) arrives.
pub(crate) fn worker_loop(shared: Arc<Shared>, index: usize, deque: Deque<JobRef>) {
    run_worker_start_hook(index);
    let ctx = WorkerCtx::new(shared, index, deque);
    let _tls = TlsGuard::install(&ctx);
    let backoff = Backoff::new();
    loop {
        if let Some(job) = ctx.find_job() {
            // Safety: taken from a deque exactly once; pusher is blocked
            // in its join until our execute sets the latch.
            let span = mpl_obs::span_start();
            unsafe { job.execute() };
            mpl_obs::span_close(mpl_obs::Metric::SchedRun, span);
            run_job_finish_hook(index);
            backoff.reset();
            continue;
        }
        if ctx.shared.terminate.load(Ordering::Acquire) {
            break;
        }
        if backoff.is_completed() {
            mpl_fail::hit_hard("sched/park");
            ctx.shared.sleepers.lock().push(thread::current());
            ctx.shared.stats.parks.fetch_add(1, Ordering::Relaxed);
            let span = mpl_obs::span_start();
            thread::park_timeout(PARK_INTERVAL);
            mpl_obs::span_close(mpl_obs::Metric::SchedPark, span);
            let me = thread::current().id();
            ctx.shared.sleepers.lock().retain(|t| t.id() != me);
        } else {
            backoff.snooze();
        }
    }
}
