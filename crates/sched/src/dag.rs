//! Recording the fork-join computation DAG.
//!
//! The runtime records each task's sequential *strands* (maximal runs of
//! instructions between fork/join points) together with their measured
//! work (operation counts). The resulting series-parallel DAG is the input
//! to the virtual-time scheduler simulation ([`crate::simsched`]), which
//! reproduces the paper's speedup experiments on hosts without many cores:
//! `T_P` is computed by replaying the measured work under P-processor work
//! stealing rather than by wall-clock timing.

use parking_lot::Mutex;

/// Identifies one strand (DAG node).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StrandId(pub usize);

#[derive(Debug, Default, Clone)]
struct Node {
    work: u64,
    succs: Vec<usize>,
    preds: usize,
}

/// A concurrent builder for the computation DAG.
///
/// Thread-safe: the real-thread executor appends from multiple workers.
#[derive(Debug, Default)]
pub struct DagBuilder {
    nodes: Mutex<Vec<Node>>,
}

impl DagBuilder {
    /// Creates a builder with a single root strand.
    pub fn new() -> (DagBuilder, StrandId) {
        let b = DagBuilder {
            nodes: Mutex::new(vec![Node::default()]),
        };
        (b, StrandId(0))
    }

    /// Adds `work` units to a strand.
    pub fn add_work(&self, s: StrandId, work: u64) {
        self.nodes.lock()[s.0].work += work;
    }

    /// Ends strand `cur` at a fork; returns the two child strands.
    pub fn fork(&self, cur: StrandId) -> (StrandId, StrandId) {
        let mut nodes = self.nodes.lock();
        let l = nodes.len();
        let r = l + 1;
        nodes.push(Node {
            preds: 1,
            ..Node::default()
        });
        nodes.push(Node {
            preds: 1,
            ..Node::default()
        });
        nodes[cur.0].succs.push(l);
        nodes[cur.0].succs.push(r);
        (StrandId(l), StrandId(r))
    }

    /// Joins the final strands of the two children; returns the
    /// continuation strand.
    pub fn join(&self, left_end: StrandId, right_end: StrandId) -> StrandId {
        let mut nodes = self.nodes.lock();
        let j = nodes.len();
        nodes.push(Node {
            preds: 2,
            ..Node::default()
        });
        nodes[left_end.0].succs.push(j);
        nodes[right_end.0].succs.push(j);
        StrandId(j)
    }

    /// Number of strands recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.lock().len()
    }

    /// True if no strand has been recorded (never: the root exists).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes the builder into an immutable DAG.
    pub fn finish(self) -> Dag {
        let nodes = self.nodes.into_inner();
        Dag { nodes }
    }
}

/// An immutable fork-join computation DAG with per-strand work.
#[derive(Debug, Clone)]
pub struct Dag {
    nodes: Vec<Node>,
}

impl Dag {
    /// Number of strands.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the DAG has no strands.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total work `W`: the sum of all strand weights.
    pub fn total_work(&self) -> u64 {
        self.nodes.iter().map(|n| n.work).sum()
    }

    /// Span `S` (critical-path work): the heaviest root-to-sink path.
    ///
    /// Strand ids are topologically ordered by construction (edges only
    /// point to later-created nodes), so a single forward pass suffices.
    pub fn span(&self) -> u64 {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut dist = vec![0u64; self.nodes.len()];
        let mut best = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            let d = dist[i] + n.work;
            best = best.max(d);
            for &s in &n.succs {
                dist[s] = dist[s].max(d);
            }
        }
        best
    }

    /// Average parallelism `W / S`.
    pub fn parallelism(&self) -> f64 {
        let s = self.span();
        if s == 0 {
            return 1.0;
        }
        self.total_work() as f64 / s as f64
    }

    pub(crate) fn work_of(&self, i: usize) -> u64 {
        self.nodes[i].work
    }

    pub(crate) fn succs_of(&self, i: usize) -> &[usize] {
        &self.nodes[i].succs
    }

    pub(crate) fn preds_of(&self, i: usize) -> usize {
        self.nodes[i].preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds: root(10) -> fork -> l(30), r(20) -> join(5).
    fn diamond() -> Dag {
        let (b, root) = DagBuilder::new();
        b.add_work(root, 10);
        let (l, r) = b.fork(root);
        b.add_work(l, 30);
        b.add_work(r, 20);
        let j = b.join(l, r);
        b.add_work(j, 5);
        b.finish()
    }

    #[test]
    fn work_and_span_of_diamond() {
        let d = diamond();
        assert_eq!(d.len(), 4);
        assert_eq!(d.total_work(), 65);
        assert_eq!(d.span(), 45, "10 + max(30,20) + 5");
        assert!((d.parallelism() - 65.0 / 45.0).abs() < 1e-9);
    }

    #[test]
    fn nested_forks() {
        let (b, root) = DagBuilder::new();
        b.add_work(root, 1);
        let (l, r) = b.fork(root);
        // Left forks again.
        let (ll, lr) = b.fork(l);
        b.add_work(ll, 7);
        b.add_work(lr, 3);
        let lj = b.join(ll, lr);
        b.add_work(lj, 1);
        b.add_work(r, 4);
        let j = b.join(lj, r);
        b.add_work(j, 2);
        let d = b.finish();
        assert_eq!(d.total_work(), 18);
        assert_eq!(d.span(), 1 + 7 + 1 + 2);
    }

    #[test]
    fn empty_work_dag() {
        let (b, _root) = DagBuilder::new();
        let d = b.finish();
        assert_eq!(d.total_work(), 0);
        assert_eq!(d.span(), 0);
        assert_eq!(d.parallelism(), 1.0);
    }

    #[test]
    fn sequential_chain_has_span_equal_work() {
        let (b, root) = DagBuilder::new();
        b.add_work(root, 5);
        let (l, r) = b.fork(root);
        b.add_work(l, 5);
        b.add_work(r, 0);
        let j = b.join(l, r);
        b.add_work(j, 5);
        let d = b.finish();
        assert_eq!(d.total_work(), 15);
        assert_eq!(d.span(), 15);
    }
}
