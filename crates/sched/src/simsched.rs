//! Virtual-time work-stealing simulation.
//!
//! Replays a recorded computation DAG under a P-processor randomized
//! work-stealing scheduler in *virtual time*: each strand occupies its
//! executing processor for exactly its recorded work, and a successful
//! steal adds a fixed overhead. This reproduces the *shape* of the paper's
//! speedup curves on a host without many physical cores; absolute numbers
//! are in work units, not seconds.
//!
//! The simulation respects the classic greedy-scheduling envelope: for any
//! schedule it produces, `W/P <= T_P <= W/P + c·S` (work `W`, span `S`,
//! steal-overhead factor `c`), which the property tests check.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::dag::Dag;

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimParams {
    /// Number of virtual processors.
    pub procs: usize,
    /// Virtual-time cost added to a strand executed after a steal.
    pub steal_overhead: u64,
    /// RNG seed for victim selection (determinism).
    pub seed: u64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            procs: 1,
            steal_overhead: 8,
            seed: 0x5eed,
        }
    }
}

/// Result of one simulated execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Virtual completion time `T_P`.
    pub time: u64,
    /// Number of successful steals.
    pub steals: u64,
    /// Strands executed (sanity: equals the DAG size).
    pub executed: usize,
}

/// Simulates the DAG under work stealing.
///
/// # Panics
///
/// Panics if `params.procs == 0` or the DAG is malformed (unreachable
/// strands would deadlock the simulation).
pub fn simulate(dag: &Dag, params: SimParams) -> SimResult {
    assert!(params.procs > 0, "need at least one processor");
    let n = dag.len();
    let mut pending: Vec<usize> = (0..n).map(|i| dag.preds_of(i)).collect();
    let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); params.procs];
    // (finish_time, proc, node) — min-heap over time, tie-broken on proc
    // then node for determinism.
    let mut running: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    let mut busy = vec![false; params.procs];
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);

    deques[0].push_back(0);
    let mut executed = 0usize;
    let mut steals = 0u64;
    let mut now = 0u64;

    loop {
        // Dispatch work to every idle processor. A processor first pops
        // its own deque (LIFO bottom), then steals from a random victim's
        // top (FIFO), paying the steal overhead.
        loop {
            let mut dispatched = false;
            for p in 0..params.procs {
                if busy[p] {
                    continue;
                }
                let (node, stolen) = if let Some(nd) = deques[p].pop_back() {
                    (Some(nd), false)
                } else {
                    let mut found = None;
                    // One round of steal attempts over random victims.
                    let start: usize = rng.gen_range(0..params.procs);
                    for k in 0..params.procs {
                        let v = (start + k) % params.procs;
                        if v == p {
                            continue;
                        }
                        if let Some(nd) = deques[v].pop_front() {
                            found = Some(nd);
                            break;
                        }
                    }
                    (found, true)
                };
                if let Some(nd) = node {
                    let overhead = if stolen && nd != 0 {
                        steals += 1;
                        params.steal_overhead
                    } else {
                        0
                    };
                    let finish = now + overhead + dag.work_of(nd);
                    running.push(Reverse((finish, p, nd)));
                    busy[p] = true;
                    dispatched = true;
                }
            }
            if !dispatched {
                break;
            }
        }

        // Advance to the next completion.
        let Some(Reverse((t, p, nd))) = running.pop() else {
            break; // nothing running and nothing dispatchable: done
        };
        now = t;
        busy[p] = false;
        executed += 1;
        for &s in dag.succs_of(nd) {
            pending[s] -= 1;
            if pending[s] == 0 {
                deques[p].push_back(s);
            }
        }
        // Also complete any other tasks finishing at the same instant so
        // their successors are visible before dispatch.
        while let Some(&Reverse((t2, _, _))) = running.peek() {
            if t2 != now {
                break;
            }
            let Reverse((_, p2, nd2)) = running.pop().unwrap();
            busy[p2] = false;
            executed += 1;
            for &s in dag.succs_of(nd2) {
                pending[s] -= 1;
                if pending[s] == 0 {
                    deques[p2].push_back(s);
                }
            }
        }
    }

    assert_eq!(executed, n, "simulation deadlocked: malformed DAG");
    SimResult {
        time: now,
        steals,
        executed,
    }
}

/// Convenience: `T_P` for each processor count in `procs`, with shared
/// parameters otherwise.
pub fn sweep(
    dag: &Dag,
    procs: &[usize],
    steal_overhead: u64,
    seed: u64,
) -> Vec<(usize, SimResult)> {
    procs
        .iter()
        .map(|&p| {
            (
                p,
                simulate(
                    dag,
                    SimParams {
                        procs: p,
                        steal_overhead,
                        seed,
                    },
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;

    /// A balanced binary fork tree of the given depth; each leaf strand
    /// carries `leaf_work`.
    fn fork_tree(depth: usize, leaf_work: u64) -> Dag {
        let (b, root) = DagBuilder::new();
        fn go(
            b: &DagBuilder,
            cur: crate::dag::StrandId,
            depth: usize,
            w: u64,
        ) -> crate::dag::StrandId {
            if depth == 0 {
                b.add_work(cur, w);
                return cur;
            }
            let (l, r) = b.fork(cur);
            let le = go(b, l, depth - 1, w);
            let re = go(b, r, depth - 1, w);
            b.join(le, re)
        }
        let _end = go(&b, root, depth, leaf_work);
        b.finish()
    }

    #[test]
    fn one_proc_time_equals_work() {
        let d = fork_tree(4, 100);
        let r = simulate(
            &d,
            SimParams {
                procs: 1,
                steal_overhead: 8,
                seed: 1,
            },
        );
        assert_eq!(r.time, d.total_work(), "P=1 never steals");
        assert_eq!(r.steals, 0);
    }

    #[test]
    fn parallel_run_is_faster_and_bounded() {
        let d = fork_tree(6, 200);
        let w = d.total_work();
        let s = d.span();
        for p in [2usize, 4, 8] {
            let r = simulate(
                &d,
                SimParams {
                    procs: p,
                    steal_overhead: 8,
                    seed: 42,
                },
            );
            assert!(r.time < w, "P={p} should beat sequential");
            assert!(r.time >= w / p as u64, "work law violated at P={p}");
            // Greedy bound with generous steal slack.
            let bound = w / p as u64 + 10 * s + 10_000;
            assert!(r.time <= bound, "P={p}: {} > {}", r.time, bound);
        }
    }

    #[test]
    fn speedup_is_monotonic_in_shape() {
        let d = fork_tree(8, 500);
        let series = sweep(&d, &[1, 2, 4, 8, 16], 8, 7);
        let t1 = series[0].1.time as f64;
        let speedups: Vec<f64> = series.iter().map(|(_, r)| t1 / r.time as f64).collect();
        assert!(speedups[1] > 1.5, "2 procs should speed up: {speedups:?}");
        assert!(
            speedups[4] > speedups[1],
            "16 procs should beat 2: {speedups:?}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = fork_tree(5, 50);
        let p = SimParams {
            procs: 4,
            steal_overhead: 8,
            seed: 99,
        };
        assert_eq!(simulate(&d, p), simulate(&d, p));
    }

    #[test]
    fn sequential_chain_gains_nothing() {
        let (b, root) = DagBuilder::new();
        b.add_work(root, 1000);
        let d = b.finish();
        let r = simulate(
            &d,
            SimParams {
                procs: 8,
                steal_overhead: 8,
                seed: 3,
            },
        );
        assert_eq!(r.time, 1000);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_panics() {
        let d = fork_tree(1, 1);
        simulate(
            &d,
            SimParams {
                procs: 0,
                steal_overhead: 0,
                seed: 0,
            },
        );
    }
}
