//! # mpl-sched — fork-join scheduling infrastructure
//!
//! Three pieces used by the entanglement-managed runtime:
//!
//! * [`dag`] — records the fork-join computation DAG with measured
//!   per-strand work;
//! * [`simsched`] — replays a recorded DAG under P-processor randomized
//!   work stealing in virtual time (the basis of the speedup experiments
//!   on hosts without many physical cores);
//! * [`executor`] / [`worker`] — the real work-stealing executor: a
//!   persistent worker pool with per-worker deques, randomized victim
//!   selection, and a help-first fork-join protocol
//!   ([`SchedMode::WorkStealing`]);
//! * [`tokens`] — a parallelism token pool bounding the legacy
//!   thread-per-fork executor's branch threads
//!   ([`SchedMode::ScopedThreads`]).
//!
//! # Example
//!
//! Record a two-way fork with uneven work and replay it on 1 and 2
//! simulated processors:
//!
//! ```
//! use mpl_sched::{simulate, DagBuilder, SimParams};
//!
//! let (builder, start) = DagBuilder::new();
//! builder.add_work(start, 10);
//! let (l, r) = builder.fork(start);
//! builder.add_work(l, 100);
//! builder.add_work(r, 100);
//! let joined = builder.join(l, r);
//! builder.add_work(joined, 10);
//! let dag = builder.finish();
//!
//! let t1 = simulate(&dag, SimParams { procs: 1, steal_overhead: 0, seed: 1 });
//! let t2 = simulate(&dag, SimParams { procs: 2, steal_overhead: 0, seed: 1 });
//! assert_eq!(t1.time, 220);
//! assert_eq!(t2.time, 120, "the two branches overlap");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dag;
pub mod executor;
pub mod simsched;
pub mod tokens;
pub mod worker;

pub use dag::{Dag, DagBuilder, StrandId};
pub use executor::{Executor, SchedMode, SchedSnapshot, SchedStats};
pub use simsched::{simulate, sweep, SimParams, SimResult};
pub use tokens::{Token, TokenPool};
pub use worker::{
    on_worker_thread, set_job_finish_hook, set_worker_start_hook, try_join, DriverGuard, WorkerCtx,
    PARK_INTERVAL,
};
