//! A persistent work-stealing worker pool for the real-thread executor.
//!
//! This replaces the thread-per-fork scoped executor: a [`Executor`] owns
//! `P - 1` long-lived worker threads (the thread that calls
//! `Runtime::run` acts as worker 0, the *driver*), each with a private
//! LIFO deque of pending fork branches. `fork(f, g)` pushes the right
//! branch onto the current worker's deque and runs the left branch
//! inline (*help-first*); idle workers steal the oldest branch from a
//! randomly chosen victim's deque. A branch that nobody stole is popped
//! back and run inline by its own worker, so an un-stolen fork costs two
//! deque operations instead of a thread spawn.
//!
//! The join protocol (in [`crate::worker`]) keeps the hierarchical-heap
//! discipline intact: branch *bodies* are closures supplied by the
//! runtime that build their own task context from the heap path captured
//! at the fork, so which OS thread executes a branch is invisible to the
//! heap hierarchy — `fork_heaps`/`join` pairing and entanglement pinning
//! depend only on fork/join nesting, which the latch-based join
//! preserves exactly.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle, Thread};

use crossbeam_deque::{Injector, Stealer, Worker as Deque};
use parking_lot::Mutex;

use crate::worker::{self, DriverGuard, JobRef};

/// Which real-thread execution strategy `fork` uses when
/// `config.threads > 1`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedMode {
    /// Thread-per-fork: spawn a scoped thread for the left branch while a
    /// parallelism token is available ([`crate::tokens::TokenPool`]),
    /// run sequentially otherwise. Simple and deterministic-ish; high
    /// per-fork overhead. Kept for protocol comparison and as a
    /// fallback.
    ScopedThreads,
    /// Persistent worker pool with per-worker deques and randomized
    /// stealing (this module). The default.
    #[default]
    WorkStealing,
}

/// Scheduler event counters, updated by workers with relaxed atomics.
#[derive(Debug, Default)]
pub struct SchedStats {
    /// Branches pushed onto a worker deque by `fork`.
    pub pushes: AtomicU64,
    /// Branches taken from another worker's deque (or the injector).
    pub steals: AtomicU64,
    /// Pushed branches popped back un-stolen and run inline by the
    /// forking worker (the sequentialized-fork fast path).
    pub sequentialized: AtomicU64,
    /// Times a worker went to sleep after failing to find work.
    pub parks: AtomicU64,
    /// Times a push woke a sleeping worker.
    pub unparks: AtomicU64,
}

impl SchedStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            pushes: self.pushes.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            sequentialized: self.sequentialized.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            unparks: self.unparks.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`SchedStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedSnapshot {
    /// See [`SchedStats::pushes`].
    pub pushes: u64,
    /// See [`SchedStats::steals`].
    pub steals: u64,
    /// See [`SchedStats::sequentialized`].
    pub sequentialized: u64,
    /// See [`SchedStats::parks`].
    pub parks: u64,
    /// See [`SchedStats::unparks`].
    pub unparks: u64,
}

/// State shared by all workers of one pool.
pub(crate) struct Shared {
    /// Overflow queue for jobs pushed from threads that are not workers.
    pub(crate) injector: Injector<JobRef>,
    /// Steal endpoints, indexed by worker.
    pub(crate) stealers: Vec<Stealer<JobRef>>,
    /// Threads currently parked waiting for work.
    pub(crate) sleepers: Mutex<Vec<Thread>>,
    /// Pool shutdown flag.
    pub(crate) terminate: AtomicBool,
    /// Event counters.
    pub(crate) stats: SchedStats,
}

impl Shared {
    /// Wakes one sleeping worker, if any (called after a push).
    pub(crate) fn notify_one(&self) {
        let woken = self.sleepers.lock().pop();
        if let Some(t) = woken {
            self.stats.unparks.fetch_add(1, Ordering::Relaxed);
            t.unpark();
        }
    }

    fn notify_all(&self) {
        let mut sleepers = self.sleepers.lock();
        for t in sleepers.drain(..) {
            t.unpark();
        }
    }
}

/// A persistent pool of `workers` work-stealing workers (including the
/// driver slot occupied by the thread that runs the program).
pub struct Executor {
    shared: Arc<Shared>,
    /// Worker 0's deque, parked here between `Runtime::run` calls.
    driver: Mutex<Option<Deque<JobRef>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl Executor {
    /// Creates a pool with `workers` total workers: `workers - 1`
    /// background threads plus the driver slot.
    pub fn new(workers: usize) -> Executor {
        assert!(workers >= 1, "need at least one worker");
        let deques: Vec<Deque<JobRef>> = (0..workers).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(Deque::stealer).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            sleepers: Mutex::new(Vec::new()),
            terminate: AtomicBool::new(false),
            stats: SchedStats::default(),
        });
        let mut deques = deques.into_iter();
        let driver = deques.next().expect("workers >= 1");
        let handles = deques
            .enumerate()
            .map(|(i, deque)| {
                let shared = Arc::clone(&shared);
                let index = i + 1;
                thread::Builder::new()
                    .name(format!("mpl-worker-{index}"))
                    .spawn(move || worker::worker_loop(shared, index, deque))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Executor {
            shared,
            driver: Mutex::new(Some(driver)),
            handles: Mutex::new(handles),
            workers,
        }
    }

    /// Total worker count (background threads + driver).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A snapshot of the scheduler counters.
    pub fn stats(&self) -> SchedSnapshot {
        self.shared.stats.snapshot()
    }

    /// Wakes every parked worker. The runtime's cancellation machinery
    /// installs this as the token-trip kick: the steal/park loops are
    /// cancellation poll points only in the sense that a woken worker
    /// immediately re-probes for work, so a trip shortens the park
    /// latency from a full park interval to one unpark — the branch
    /// bodies themselves unwind at their first in-task poll point.
    pub fn unpark_all(&self) {
        self.shared.notify_all();
    }

    /// Installs the calling thread as worker 0 until the guard drops.
    /// Returns `None` if another thread currently holds the driver slot
    /// (callers then fall back to sequential forks).
    pub fn install_driver(&self) -> Option<DriverGuard<'_>> {
        let deque = self.driver.lock().take()?;
        Some(DriverGuard::install(self, deque))
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    pub(crate) fn return_driver(&self, deque: Deque<JobRef>) {
        debug_assert!(
            deque.is_empty(),
            "driver deque must be drained before release"
        );
        *self.driver.lock() = Some(deque);
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.terminate.store(true, Ordering::SeqCst);
        self.shared.notify_all();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::try_join;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        match try_join(move || fib(n - 1), move || fib(n - 2)) {
            Ok((a, b)) => a + b,
            Err((a, b)) => a() + b(),
        }
    }

    #[test]
    fn pool_starts_and_shuts_down() {
        let ex = Executor::new(4);
        assert_eq!(ex.workers(), 4);
        drop(ex);
    }

    #[test]
    fn join_off_pool_falls_back_to_sequential() {
        // No driver installed on this thread: try_join must hand the
        // closures back.
        assert!(try_join(|| 1, || 2).is_err());
        assert_eq!(fib(10), 55);
    }

    #[test]
    fn driver_join_computes_and_counts() {
        let ex = Executor::new(4);
        let guard = ex.install_driver().expect("driver slot free");
        assert_eq!(fib(16), 987);
        drop(guard);
        let s = ex.stats();
        assert!(s.pushes > 0, "forks must hit the deque: {s:?}");
        assert_eq!(
            s.steals + s.sequentialized,
            s.pushes,
            "every push is either stolen or popped back: {s:?}"
        );
    }

    #[test]
    fn driver_slot_is_exclusive_and_returns() {
        let ex = Executor::new(2);
        let g1 = ex.install_driver().expect("free");
        assert!(ex.install_driver().is_none(), "slot taken");
        drop(g1);
        assert!(ex.install_driver().is_some(), "slot returned");
    }

    #[test]
    fn stress_many_forks_across_runs() {
        let ex = Executor::new(8);
        for round in 0..5 {
            let guard = ex.install_driver().expect("driver slot free");
            assert_eq!(fib(14), 377, "round {round}");
            drop(guard);
        }
    }

    /// The GC's work-packet fan-out shape: recursive binary `try_join`
    /// splits over a shared slice of borrowed (non-`'static`) work
    /// items, with every leaf writing through a shared atomic. This is
    /// exactly how `mpl-gc` schedules trace/sweep packets, so the shape
    /// gets its own coverage here.
    #[test]
    fn recursive_borrowed_fanout_visits_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};

        fn fan(items: &[u64], sum: &AtomicU64) {
            if items.len() <= 1 {
                for &it in items {
                    sum.fetch_add(it, Ordering::Relaxed);
                }
                return;
            }
            let (l, r) = items.split_at(items.len() / 2);
            match try_join(|| fan(l, sum), || fan(r, sum)) {
                Ok(_) => {}
                Err((a, b)) => {
                    a();
                    b();
                }
            }
        }

        let items: Vec<u64> = (1..=512).collect();
        let expect: u64 = items.iter().sum();
        // On-pool: packets are pushed/stolen across 4 workers.
        let ex = Executor::new(4);
        let guard = ex.install_driver().expect("driver slot free");
        let sum = AtomicU64::new(0);
        fan(&items, &sum);
        assert_eq!(sum.load(Ordering::Relaxed), expect);
        drop(guard);
        // Off-pool: the same fan-out degrades to a sequential walk.
        let sum = AtomicU64::new(0);
        fan(&items, &sum);
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn panics_propagate_from_stolen_branch() {
        let ex = Executor::new(2);
        let guard = ex.install_driver().expect("driver slot free");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = try_join(
                || 1,
                || -> i32 {
                    panic!("branch panic");
                },
            );
        }));
        assert!(r.is_err(), "panic must cross the join");
        drop(guard);
        drop(ex);
    }
}
