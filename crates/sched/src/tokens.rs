//! A parallelism token pool for the real-thread executor.
//!
//! The real-thread executor realizes `fork(f, g)` by spawning a scoped
//! thread for one branch when a parallelism token is available and running
//! sequentially otherwise. The pool bounds the number of live branch
//! threads to the configured processor count, which is the structured
//! (help-first) degenerate case of work stealing — adequate for validating
//! the runtime's concurrent protocols; scheduling *performance* is modeled
//! by [`crate::simsched`] instead.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A counting pool of parallelism tokens.
#[derive(Debug)]
pub struct TokenPool {
    available: AtomicUsize,
    capacity: usize,
}

/// RAII guard for one acquired token.
#[derive(Debug)]
pub struct Token<'p> {
    pool: &'p TokenPool,
}

impl TokenPool {
    /// Creates a pool for `procs` processors (`procs - 1` fork tokens;
    /// the calling thread is the first processor).
    pub fn new(procs: usize) -> TokenPool {
        assert!(procs > 0, "need at least one processor");
        TokenPool {
            available: AtomicUsize::new(procs - 1),
            capacity: procs - 1,
        }
    }

    /// Attempts to take a token without blocking.
    pub fn try_acquire(&self) -> Option<Token<'_>> {
        let mut cur = self.available.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return None;
            }
            // Success needs Acquire to pair with the Release in
            // `Token::drop`: a thread that re-acquires a just-released
            // token must observe everything the releasing branch thread
            // wrote. Release semantics on the acquire side would order
            // nothing useful (the acquirer has published nothing yet),
            // and the failure load feeds only the retry, so Relaxed is
            // enough there.
            match self.available.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Token { pool: self }),
                Err(c) => cur = c,
            }
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> usize {
        self.available.load(Ordering::Relaxed)
    }

    /// Total token capacity (`procs - 1`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Drop for Token<'_> {
    fn drop(&mut self) {
        // Release pairs with the Acquire in `try_acquire`: publishes the
        // finished branch's writes to whoever takes this token next.
        self.pool.available.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_and_release() {
        let pool = TokenPool::new(3);
        assert_eq!(pool.capacity(), 2);
        let a = pool.try_acquire().unwrap();
        let b = pool.try_acquire().unwrap();
        assert!(pool.try_acquire().is_none());
        drop(a);
        let c = pool.try_acquire().unwrap();
        assert!(pool.try_acquire().is_none());
        drop(b);
        drop(c);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn single_proc_pool_never_grants() {
        let pool = TokenPool::new(1);
        assert!(pool.try_acquire().is_none());
    }

    #[test]
    fn exhaustion_release_round_trip() {
        // Drain the pool completely, release everything, and verify full
        // capacity returns — repeatedly, so a lost or duplicated token
        // from a broken CAS loop would accumulate and show.
        let pool = TokenPool::new(5);
        for round in 0..100 {
            let mut held = Vec::new();
            while let Some(t) = pool.try_acquire() {
                held.push(t);
            }
            assert_eq!(held.len(), 4, "round {round}: full capacity acquirable");
            assert_eq!(pool.available(), 0, "round {round}: exhausted");
            assert!(
                pool.try_acquire().is_none(),
                "round {round}: none past zero"
            );
            drop(held);
            assert_eq!(pool.available(), 4, "round {round}: all returned");
        }
    }

    #[test]
    fn release_publishes_branch_writes() {
        // The acquire/release pairing on the token counter must carry a
        // happens-before edge: writes made while holding the (single)
        // token must be visible to the next holder. With capacity 1 the
        // token is a mutex, so a relaxed read-modify-write sequence under
        // it loses no increments iff the edge exists.
        let pool = TokenPool::new(2); // capacity 1: true mutual exclusion
        let data = AtomicUsize::new(0);
        let acquisitions = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..2000 {
                        if let Some(_t) = pool.try_acquire() {
                            let seen = data.load(Ordering::Relaxed);
                            data.store(seen + 1, Ordering::Relaxed);
                            acquisitions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            data.load(Ordering::Relaxed),
            acquisitions.load(Ordering::Relaxed),
            "every token-protected increment must be visible to the next holder"
        );
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn concurrent_acquire_is_bounded() {
        let pool = TokenPool::new(4);
        let max_seen = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..200 {
                        if let Some(_t) = pool.try_acquire() {
                            let n = live.fetch_add(1, Ordering::SeqCst) + 1;
                            max_seen.fetch_max(n, Ordering::SeqCst);
                            live.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert!(max_seen.load(Ordering::SeqCst) <= 3);
        assert_eq!(pool.available(), 3);
    }
}
