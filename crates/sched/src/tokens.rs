//! A parallelism token pool for the real-thread executor.
//!
//! The real-thread executor realizes `fork(f, g)` by spawning a scoped
//! thread for one branch when a parallelism token is available and running
//! sequentially otherwise. The pool bounds the number of live branch
//! threads to the configured processor count, which is the structured
//! (help-first) degenerate case of work stealing — adequate for validating
//! the runtime's concurrent protocols; scheduling *performance* is modeled
//! by [`crate::simsched`] instead.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A counting pool of parallelism tokens.
#[derive(Debug)]
pub struct TokenPool {
    available: AtomicUsize,
    capacity: usize,
}

/// RAII guard for one acquired token.
#[derive(Debug)]
pub struct Token<'p> {
    pool: &'p TokenPool,
}

impl TokenPool {
    /// Creates a pool for `procs` processors (`procs - 1` fork tokens;
    /// the calling thread is the first processor).
    pub fn new(procs: usize) -> TokenPool {
        assert!(procs > 0, "need at least one processor");
        TokenPool {
            available: AtomicUsize::new(procs - 1),
            capacity: procs - 1,
        }
    }

    /// Attempts to take a token without blocking.
    pub fn try_acquire(&self) -> Option<Token<'_>> {
        let mut cur = self.available.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return None;
            }
            match self.available.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Token { pool: self }),
                Err(c) => cur = c,
            }
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> usize {
        self.available.load(Ordering::Relaxed)
    }

    /// Total token capacity (`procs - 1`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Drop for Token<'_> {
    fn drop(&mut self) {
        self.pool.available.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_and_release() {
        let pool = TokenPool::new(3);
        assert_eq!(pool.capacity(), 2);
        let a = pool.try_acquire().unwrap();
        let b = pool.try_acquire().unwrap();
        assert!(pool.try_acquire().is_none());
        drop(a);
        let c = pool.try_acquire().unwrap();
        assert!(pool.try_acquire().is_none());
        drop(b);
        drop(c);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn single_proc_pool_never_grants() {
        let pool = TokenPool::new(1);
        assert!(pool.try_acquire().is_none());
    }

    #[test]
    fn concurrent_acquire_is_bounded() {
        let pool = TokenPool::new(4);
        let max_seen = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..200 {
                        if let Some(_t) = pool.try_acquire() {
                            let n = live.fetch_add(1, Ordering::SeqCst) + 1;
                            max_seen.fetch_max(n, Ordering::SeqCst);
                            live.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert!(max_seen.load(Ordering::SeqCst) <= 3);
        assert_eq!(pool.available(), 3);
    }
}
