//! The shipped `.mpl` programs (in `programs/`) must compile, run, and
//! produce their documented results — under the default configuration,
//! under GC pressure, and on the real-thread executor.

use mpl_compile::run_source;
use mpl_runtime::{GcPolicy, Runtime, RuntimeConfig, StoreConfig};

fn program(name: &str) -> String {
    let path = format!("{}/../../programs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn configs() -> Vec<(&'static str, RuntimeConfig)> {
    vec![
        ("default", RuntimeConfig::managed()),
        (
            "pressure",
            RuntimeConfig {
                policy: GcPolicy {
                    lgc_trigger_bytes: 8 * 1024,
                    cgc_trigger_pinned_bytes: 16 * 1024,
                    immediate_block_free: true,
                },
                store: StoreConfig {
                    block_words: 64,
                    ..Default::default()
                },
                ..RuntimeConfig::managed()
            },
        ),
        ("threads", RuntimeConfig::managed().with_threads(3)),
    ]
}

fn check(name: &str, expect: &str) {
    // Non-tail recursion in the calculus consumes Rust stack in the
    // tree-walking backend; give the programs a roomy stack.
    let name = name.to_string();
    let expect = expect.to_string();
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(move || {
            let src = program(&name);
            for (label, cfg) in configs() {
                let rt = Runtime::new(cfg);
                let out = run_source(&rt, &src, 500_000_000)
                    .unwrap_or_else(|e| panic!("{name} [{label}]: {e}"));
                assert_eq!(out.rendered, expect, "{name} [{label}]");
                assert_eq!(rt.stats().pinned_bytes, 0, "{name} [{label}]: pins resolve");
                rt.assert_heap_sound();
            }
        })
        .expect("spawn")
        .join()
        .expect("program thread");
}

#[test]
fn fib_program() {
    check("fib.mpl", "6765");
}

#[test]
fn array_sum_program() {
    // sum of i^2 for i in 0..256
    let expect: i64 = (0..256i64).map(|i| i * i).sum();
    check("array_sum.mpl", &expect.to_string());
}

#[test]
fn msort_program() {
    // (sorted_ok, checksum) — checksum pinned by the seeded fill.
    check("msort.mpl", "(1, 506575)");
}

#[test]
fn nqueens_program() {
    check("nqueens.mpl", "92");
}

#[test]
fn primes_program() {
    // pi(1000) = 168.
    check("primes.mpl", "168");
}

#[test]
fn histogram_program_entangles() {
    // Sequential schedules only: the refresh/bump race is resolved
    // deterministically (left first) under depth-first execution, but is
    // a genuine data race under real threads.
    let src = program("histogram.mpl");
    for cfg in [
        RuntimeConfig::managed(),
        RuntimeConfig {
            policy: GcPolicy {
                lgc_trigger_bytes: 8 * 1024,
                cgc_trigger_pinned_bytes: 16 * 1024,
                immediate_block_free: true,
            },
            store: StoreConfig {
                block_words: 64,
                ..Default::default()
            },
            ..RuntimeConfig::managed()
        },
    ] {
        let rt = Runtime::new(cfg);
        let out = run_source(&rt, &src, 10_000_000).unwrap();
        assert_eq!(out.rendered, "64");
        let s = rt.stats();
        assert_eq!(s.entangled_reads, 64, "every bump reads a sibling cell");
        assert_eq!(s.pins, 8, "one pin per bucket cell");
        assert_eq!(s.pinned_bytes, 0, "unpinned at the join");
        rt.assert_heap_sound();
    }
    // Prior MPL rejects it.
    let rt = Runtime::new(RuntimeConfig::detect_only());
    let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_source(&rt, &src, 10_000_000)
    }))
    .is_err();
    assert!(refused);
}

#[test]
fn entangled_program_requires_management() {
    let src = program("entangled.mpl");
    // Managed: works.
    let rt = Runtime::new(RuntimeConfig::managed());
    let out = run_source(&rt, &src, 1_000_000).unwrap();
    assert_eq!(out.rendered, "42");
    assert!(rt.stats().pins >= 1);
    // Prior MPL: aborts.
    let rt = Runtime::new(RuntimeConfig::detect_only());
    let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_source(&rt, &src, 1_000_000)
    }))
    .is_err();
    assert!(refused, "DetectOnly must reject the entangled program");
}

#[test]
fn pipeline_program_runs_on_the_semantics() {
    use mpl_lang::{run_program, LangMode, Options, Schedule};
    let src = program("pipeline.mpl");
    mpl_compile::typecheck(&mpl_lang::parse(&src).unwrap()).unwrap();
    for schedule in [
        Schedule::DepthFirst,
        Schedule::RoundRobin,
        Schedule::Random(3),
    ] {
        let out = run_program(
            &src,
            Options {
                schedule,
                mode: LangMode::Managed,
                fuel: 1_000_000,
            },
        )
        .unwrap();
        assert_eq!(out.render(), "585", "{schedule:?}");
        assert_eq!(out.costs.futures, 3);
        assert!(out.store.pinned_locs().is_empty());
    }
}

#[test]
fn future_programs_typecheck_but_are_semantics_only() {
    use mpl_compile::PipelineError;
    // The front end types them (future/touch are first-class)...
    for (name, src) in mpl_lang::examples::SEMANTICS_ONLY {
        let ast = mpl_lang::parse(src).unwrap();
        mpl_compile::typecheck(&ast).unwrap_or_else(|e| panic!("{name}: {e}"));
        // ...but the compiled backend rejects them with a clear pointer
        // to the interpreter.
        let rt = Runtime::new(RuntimeConfig::managed());
        match run_source(&rt, src, 1_000_000) {
            Err(PipelineError::Lower(e)) => {
                assert!(e.to_string().contains("semantics-level"), "{name}: {e}")
            }
            other => panic!("{name}: expected a lowering rejection, got {other:?}"),
        }
    }
    // And the interpreter runs them to their documented answers.
    use mpl_lang::{run_program, LangMode, Options, Schedule};
    let o = Options {
        schedule: Schedule::DepthFirst,
        mode: LangMode::Managed,
        fuel: 1_000_000,
    };
    assert_eq!(
        run_program(mpl_lang::examples::FUTURE_PIPELINE, o)
            .unwrap()
            .render(),
        "32"
    );
    assert_eq!(
        run_program(mpl_lang::examples::FUTURE_PUBLISH, o)
            .unwrap()
            .render(),
        "1"
    );
}
