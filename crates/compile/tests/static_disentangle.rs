//! Static disentanglement analysis vs dynamic truth.
//!
//! Soundness is the only hard requirement: whenever the analysis says
//! *disentangled*, no schedule may produce a single entangled access,
//! and running barrier-free must be observationally identical to running
//! managed. Precision is checked against the curated examples: every
//! deliberately-entangled program must be (correctly) rejected.

use proptest::prelude::*;

use mpl_compile::{analyze, run_source, Verdict};
use mpl_lang::{parse, run_program, LangMode, Options, Schedule};
use mpl_runtime::{Runtime, RuntimeConfig};

fn verdict(src: &str) -> Verdict {
    analyze(&parse(src).unwrap()).unwrap()
}

/// Dynamic oracle: does any of the three schedules entangle?
fn entangles_somewhere(src: &str) -> bool {
    [
        Schedule::DepthFirst,
        Schedule::RoundRobin,
        Schedule::Random(7),
    ]
    .into_iter()
    .any(|schedule| {
        let out = run_program(
            src,
            Options {
                schedule,
                mode: LangMode::Managed,
                fuel: 50_000_000,
            },
        )
        .expect("managed run");
        out.costs.entangled_reads + out.costs.entangled_writes + out.costs.pins > 0
    })
}

#[test]
fn analysis_is_sound_on_all_examples() {
    for (name, src) in mpl_lang::examples::ALL {
        let v = verdict(src);
        if v.is_disentangled() {
            assert!(
                !entangles_somewhere(src),
                "{name}: statically disentangled but dynamically entangled"
            );
            // Barrier elision must not change the answer.
            let rt_m = Runtime::new(RuntimeConfig::managed());
            let managed = run_source(&rt_m, src, 50_000_000).unwrap().rendered;
            let rt_nb = Runtime::new(RuntimeConfig::no_barrier());
            let nb = run_source(&rt_nb, src, 50_000_000).unwrap().rendered;
            assert_eq!(managed, nb, "{name}: barrier elision changed the result");
        }
    }
}

#[test]
fn analysis_rejects_every_deliberately_entangled_example() {
    for (name, src) in mpl_lang::examples::ALL {
        if mpl_lang::examples::is_entangled(name) {
            assert!(
                !verdict(src).is_disentangled(),
                "{name}: the analysis must reject this program"
            );
        }
    }
}

#[test]
fn analysis_accepts_the_pure_examples() {
    // Precision check on the curated suite: the pointer-free programs
    // are all proven disentangled (no false negatives *here*; the
    // analysis is allowed to be imprecise in general).
    for name in ["fib", "tree_sum", "counter", "shared_counter", "array_sum"] {
        let src = mpl_lang::examples::ALL
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap()
            .1;
        assert!(
            verdict(src).is_disentangled(),
            "{name} should be provably disentangled"
        );
    }
}

#[test]
fn shipped_programs_have_expected_verdicts() {
    let program = |name: &str| {
        let path = format!("{}/../../programs/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::read_to_string(&path).unwrap()
    };
    for name in [
        "fib.mpl",
        "array_sum.mpl",
        "msort.mpl",
        "nqueens.mpl",
        "primes.mpl",
    ] {
        assert!(
            verdict(&program(name)).is_disentangled(),
            "{name} should be provably disentangled"
        );
    }
    for name in ["entangled.mpl", "histogram.mpl"] {
        assert!(
            !verdict(&program(name)).is_disentangled(),
            "{name} must be rejected"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random flat-array programs are always proven disentangled, and the
    /// proof is dynamically honored.
    #[test]
    fn random_flat_array_programs_prove_disentangled(
        len in 2usize..8,
        ops in proptest::collection::vec((0usize..8, 0i64..50), 1..8),
    ) {
        let body: Vec<String> = ops
            .iter()
            .map(|(i, v)| format!("update(a, {} mod {len}, {v})", i))
            .collect();
        let src = format!(
            "let a = array({len}, 0) in let p = par(({}; 0), sub(a, 0)) in snd p",
            body.join("; ")
        );
        let v = verdict(&src);
        prop_assert!(v.is_disentangled(), "{src}: {v}");
        prop_assert!(!entangles_somewhere(&src));
    }
}
