//! End-to-end agreement: every program must produce the same answer (and
//! consistent entanglement behaviour) under the formal semantics and when
//! compiled onto the managed runtime.

use proptest::prelude::*;

use mpl_compile::{run_source, typecheck, PipelineError};
use mpl_lang::{parse, run_program, BinOp, Expr, LangMode, Options, Schedule};
use mpl_runtime::{Runtime, RuntimeConfig};

fn interp(src: &str) -> String {
    run_program(
        src,
        Options {
            schedule: Schedule::DepthFirst,
            mode: LangMode::Managed,
            fuel: 50_000_000,
        },
    )
    .expect("interpreter run")
    .render()
}

fn compiled(src: &str) -> (String, mpl_runtime::StatsSnapshot) {
    let rt = Runtime::new(RuntimeConfig::managed());
    let out = run_source(&rt, src, 50_000_000).expect("compiled run");
    (out.rendered, rt.stats())
}

#[test]
fn all_examples_agree() {
    for (name, src) in mpl_lang::examples::ALL {
        let i = interp(src);
        let (c, stats) = compiled(src);
        assert_eq!(i, c, "{name}: semantics vs compiled");
        assert_eq!(stats.pinned_bytes, 0, "{name}: pins resolved");
    }
}

/// Entanglement cost metrics line up: the compiled runtime observes
/// exactly as many entangled reads as the formal semantics counts, for
/// the deterministic depth-first schedule.
#[test]
fn entanglement_counts_agree() {
    for (name, src) in mpl_lang::examples::ALL {
        let sem = run_program(
            src,
            Options {
                schedule: Schedule::DepthFirst,
                mode: LangMode::Managed,
                fuel: 50_000_000,
            },
        )
        .unwrap();
        let (_, stats) = compiled(src);
        assert_eq!(
            stats.entangled_reads, sem.costs.entangled_reads,
            "{name}: entangled reads (semantics {} vs runtime {})",
            sem.costs.entangled_reads, stats.entangled_reads
        );
        assert_eq!(stats.pins, sem.costs.pins, "{name}: pin counts must match");
    }
}

/// DetectOnly agreement end to end: the compiled pipeline aborts exactly
/// when the formal semantics does.
#[test]
fn detect_only_agrees_end_to_end() {
    for (name, src) in mpl_lang::examples::ALL {
        let sem = run_program(
            src,
            Options {
                schedule: Schedule::DepthFirst,
                mode: LangMode::DetectOnly,
                fuel: 50_000_000,
            },
        );
        let rt = Runtime::new(RuntimeConfig::detect_only());
        let comp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_source(&rt, src, 50_000_000)
        }));
        match (sem.is_err(), comp.is_err()) {
            (true, true) | (false, false) => {}
            (s, c) => panic!("{name}: semantics abort={s} but compiled abort={c}"),
        }
    }
}

// ---- property: random pure programs agree --------------------------------

fn pure_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Expr::Int),
        any::<bool>().prop_map(Expr::Bool),
        Just(Expr::Unit),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = pure_expr(depth - 1);
    let int_sub = (-50i64..50).prop_map(Expr::Int).boxed();
    prop_oneof![
        2 => leaf,
        2 => (int_sub.clone(), int_sub.clone(), prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul)])
            .prop_map(|(a, b, op)| Expr::Bin(op, a.rc(), b.rc())),
        1 => (int_sub.clone(), sub.clone(), sub.clone())
            .prop_map(|(c, t, _e)| Expr::If(
                Expr::Bin(BinOp::Lt, c.rc(), Expr::Int(0).rc()).rc(),
                t.clone().rc(),
                t.rc(),
            )),
        2 => (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Pair(a.rc(), b.rc())),
        1 => (sub.clone(), sub).prop_map(|(a, b)| Expr::Fst(Expr::Par(a.rc(), b.rc()).rc())),
    ]
    .boxed()
}

/// Random *array programs*: a fixed-size int array, a sequence of
/// in-range updates/reads composed with `;` and `+`, optionally split
/// across `par`.
fn array_prog(len: usize, ops: usize) -> impl Strategy<Value = String> {
    let op = prop_oneof![
        // ML negative literals use `~`; keep the generator simple with
        // non-negative values.
        (0..len, 0i64..100).prop_map(|(i, v)| format!("update(a, {i}, {v})")),
        (0..len).prop_map(|i| format!("q := !q + sub(a, {i})")),
    ];
    proptest::collection::vec(op, 1..ops).prop_map(move |ops| {
        let body = ops.join("; ");
        format!("let a = array({len}, 1) in let q = ref 0 in ({body}); !q + sub(a, 0) + length a")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Array programs agree between the formal semantics and the compiled
    /// pipeline (results and entanglement counts).
    #[test]
    fn array_programs_agree(src in array_prog(6, 12)) {
        prop_assert!(typecheck(&parse(&src).unwrap()).is_ok(), "{src}");
        let i = interp(&src);
        let (c, stats) = compiled(&src);
        prop_assert_eq!(&i, &c, "program: {}", src);
        prop_assert_eq!(stats.pinned_bytes, 0);
    }

    /// Out-of-bounds accesses fail identically in both systems.
    #[test]
    fn bounds_errors_agree(idx in 6usize..20) {
        let src = format!("let a = array(6, 0) in sub(a, {idx})");
        let sem = run_program(
            &src,
            Options {
                schedule: Schedule::DepthFirst,
                mode: LangMode::Managed,
                fuel: 100_000,
            },
        );
        prop_assert!(sem.is_err());
        let rt = Runtime::new(RuntimeConfig::managed());
        let comp = run_source(&rt, &src, 100_000);
        prop_assert!(matches!(comp, Err(PipelineError::Eval(_))), "{comp:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-typed random programs: interpreter and compiled runtime agree
    /// on the rendered result.
    #[test]
    fn random_well_typed_programs_agree(e in pure_expr(4)) {
        // Only well-typed programs flow through the whole pipeline.
        if typecheck(&e).is_err() {
            return Ok(());
        }
        let src = e.to_string();
        prop_assert!(parse(&src).is_ok());
        let i = interp(&src);
        let rt = Runtime::new(RuntimeConfig::managed());
        match run_source(&rt, &src, 10_000_000) {
            Ok(out) => prop_assert_eq!(i, out.rendered, "program: {}", src),
            Err(PipelineError::Eval(_)) => {
                // Division by zero etc. would also fail in the
                // interpreter; pure generator avoids div, so this is
                // unreachable, but keep the arm total.
                prop_assert!(false, "unexpected eval error for {}", src);
            }
            Err(other) => prop_assert!(false, "pipeline error {other} for {}", src),
        }
    }
}
