//! Lowering: named surface syntax to a thread-shareable, de Bruijn-indexed
//! core IR.
//!
//! The runtime executes fork branches on real threads, so compiled code
//! must be `Send`; the surface AST uses `Rc` and names, the core IR uses
//! `Arc` and indices. Variable lookup becomes a counted walk up the
//! environment chain (which lives in the managed heap at run time).

use std::fmt;
use std::sync::Arc;

use mpl_lang::{BinOp, Expr};

/// The core IR. De Bruijn convention: `Var(0)` is the innermost binding.
/// A `Fix` body sees `Var(0)` = the parameter and `Var(1)` = the function
/// itself.
#[derive(Clone, Debug, PartialEq)]
pub enum CExpr {
    /// De Bruijn variable.
    Var(usize),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Unit literal.
    Unit,
    /// Abstraction (binds 1).
    Lam(Arc<CExpr>),
    /// Recursive abstraction (binds 2: parameter, then self).
    Fix(Arc<CExpr>),
    /// Application.
    App(Arc<CExpr>, Arc<CExpr>),
    /// Pair construction.
    Pair(Arc<CExpr>, Arc<CExpr>),
    /// First projection.
    Fst(Arc<CExpr>),
    /// Second projection.
    Snd(Arc<CExpr>),
    /// `let` (binds 1 in the body).
    Let(Arc<CExpr>, Arc<CExpr>),
    /// Conditional.
    If(Arc<CExpr>, Arc<CExpr>, Arc<CExpr>),
    /// Cell allocation.
    Ref(Arc<CExpr>),
    /// Barriered read.
    Deref(Arc<CExpr>),
    /// Barriered write.
    Assign(Arc<CExpr>, Arc<CExpr>),
    /// Fork-join.
    Par(Arc<CExpr>, Arc<CExpr>),
    /// Array allocation.
    Array(Arc<CExpr>, Arc<CExpr>),
    /// Barriered array read.
    Sub(Arc<CExpr>, Arc<CExpr>),
    /// Barriered array write.
    Update(Arc<CExpr>, Arc<CExpr>, Arc<CExpr>),
    /// Array length.
    Length(Arc<CExpr>),
    /// Sequencing.
    Seq(Arc<CExpr>, Arc<CExpr>),
    /// Primitive operation.
    Bin(BinOp, Arc<CExpr>, Arc<CExpr>),
}

/// Lowering failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LowerError {
    /// An unbound variable (everything else is shape-preserving).
    Unbound(String),
    /// A construct the compiled backend does not support.
    Unsupported(&'static str),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Unbound(name) => {
                write!(f, "unbound variable `{name}` during lowering")
            }
            LowerError::Unsupported(what) => write!(
                f,
                "{what} is a semantics-level feature (run it with the \
                 mpl-lang interpreter); the compiled backend supports \
                 fork-join parallelism only"
            ),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowers a closed expression.
pub fn lower(e: &Expr) -> Result<Arc<CExpr>, LowerError> {
    let mut scope: Vec<String> = Vec::new();
    go(e, &mut scope)
}

fn go(e: &Expr, scope: &mut Vec<String>) -> Result<Arc<CExpr>, LowerError> {
    Ok(Arc::new(match e {
        Expr::Future(_) | Expr::Touch(_) => {
            return Err(LowerError::Unsupported("futures (`future`/`touch`)"))
        }
        Expr::Var(x) => {
            let idx = scope
                .iter()
                .rev()
                .position(|n| n == x)
                .ok_or_else(|| LowerError::Unbound(x.clone()))?;
            CExpr::Var(idx)
        }
        Expr::Int(n) => CExpr::Int(*n),
        Expr::Bool(b) => CExpr::Bool(*b),
        Expr::Unit => CExpr::Unit,
        Expr::Lam(x, b) => {
            scope.push(x.clone());
            let b = go(b, scope)?;
            scope.pop();
            CExpr::Lam(b)
        }
        Expr::Fix(f, x, b) => {
            // Body convention: Var(0) = x (innermost), Var(1) = f.
            scope.push(f.clone());
            scope.push(x.clone());
            let b = go(b, scope)?;
            scope.pop();
            scope.pop();
            CExpr::Fix(b)
        }
        Expr::App(a, b) => CExpr::App(go(a, scope)?, go(b, scope)?),
        Expr::Pair(a, b) => CExpr::Pair(go(a, scope)?, go(b, scope)?),
        Expr::Fst(a) => CExpr::Fst(go(a, scope)?),
        Expr::Snd(a) => CExpr::Snd(go(a, scope)?),
        Expr::Let(x, rhs, body) => {
            let rhs = go(rhs, scope)?;
            scope.push(x.clone());
            let body = go(body, scope)?;
            scope.pop();
            CExpr::Let(rhs, body)
        }
        Expr::If(c, t, f) => CExpr::If(go(c, scope)?, go(t, scope)?, go(f, scope)?),
        Expr::Ref(a) => CExpr::Ref(go(a, scope)?),
        Expr::Deref(a) => CExpr::Deref(go(a, scope)?),
        Expr::Assign(a, b) => CExpr::Assign(go(a, scope)?, go(b, scope)?),
        Expr::Par(a, b) => CExpr::Par(go(a, scope)?, go(b, scope)?),
        Expr::Array(n, i) => CExpr::Array(go(n, scope)?, go(i, scope)?),
        Expr::Sub(a, i) => CExpr::Sub(go(a, scope)?, go(i, scope)?),
        Expr::Update(a, i, v) => CExpr::Update(go(a, scope)?, go(i, scope)?, go(v, scope)?),
        Expr::Length(a) => CExpr::Length(go(a, scope)?),
        Expr::Seq(a, b) => CExpr::Seq(go(a, scope)?, go(b, scope)?),
        Expr::Bin(op, a, b) => CExpr::Bin(*op, go(a, scope)?, go(b, scope)?),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::parse;

    fn l(src: &str) -> Arc<CExpr> {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn indices_count_inward() {
        // fn x => fn y => x  ==>  Lam(Lam(Var 1))
        assert_eq!(
            *l("fn x => fn y => x"),
            CExpr::Lam(Arc::new(CExpr::Lam(Arc::new(CExpr::Var(1)))))
        );
        assert_eq!(
            *l("fn x => fn y => y"),
            CExpr::Lam(Arc::new(CExpr::Lam(Arc::new(CExpr::Var(0)))))
        );
    }

    #[test]
    fn shadowing_resolves_to_innermost() {
        // let x = 1 in let x = 2 in x  => Var(0) of the inner let
        let e = l("let x = 1 in let x = 2 in x");
        if let CExpr::Let(_, body) = &*e {
            if let CExpr::Let(_, inner) = &**body {
                assert_eq!(**inner, CExpr::Var(0));
                return;
            }
        }
        panic!("unexpected shape: {e:?}");
    }

    #[test]
    fn fix_binds_param_then_self() {
        let e = l("fix f x => f x");
        if let CExpr::Fix(body) = &*e {
            assert_eq!(
                **body,
                CExpr::App(Arc::new(CExpr::Var(1)), Arc::new(CExpr::Var(0)))
            );
        } else {
            panic!("not a fix: {e:?}");
        }
    }

    #[test]
    fn unbound_variables_fail() {
        assert!(lower(&parse("x").unwrap()).is_err());
        assert!(lower(&parse("fn x => y").unwrap()).is_err());
    }

    #[test]
    fn ir_is_send() {
        fn assert_send<T: Send + Sync>() {}
        assert_send::<Arc<CExpr>>();
    }
}
