//! # mpl-compile — the compiler pipeline onto the managed runtime
//!
//! The miniature analogue of the MPL compiler from *"Efficient Parallel
//! Functional Programming with Effects"* (PLDI 2023): source programs in
//! the λ-par-ref calculus are
//!
//! 1. **parsed** (by [`mpl_lang::parser`]),
//! 2. **typechecked** with Hindley–Milner inference and the ML value
//!    restriction ([`types`]),
//! 3. **lowered** to a de Bruijn-indexed, thread-shareable core IR
//!    ([`mod@lower`]), and
//! 4. **executed on the entanglement-managed runtime** ([`mod@eval`]) — with
//!    environments, closures, and pairs allocated in the hierarchical
//!    heap, `!`/`:=` passing through the real read/write barriers, and
//!    `par` mapped onto runtime fork-join.
//!
//! The payoff is end-to-end agreement checking: the same program runs
//! under the paper's *formal semantics* (`mpl-lang`) and under the
//! *runtime implementation*, and the entanglement cost metrics of the
//! two can be compared directly (experiment E8).
//!
//! ```
//! use mpl_compile::run_source;
//! use mpl_runtime::{Runtime, RuntimeConfig};
//!
//! let rt = Runtime::new(RuntimeConfig::managed());
//! let out = run_source(&rt, "let r = ref 41 in r := !r + 1; !r", 100_000).unwrap();
//! assert_eq!(out.rendered, "42");
//! assert_eq!(out.ty.to_string(), "int");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod disentangle;
pub mod eval;
pub mod lower;
pub mod types;

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use mpl_lang::{parse, Expr, ParseError};
use mpl_runtime::{Mutator, Runtime, Value};

pub use disentangle::{analyze, Reason, Verdict};
pub use eval::{eval, EvalCx, EvalError};
pub use lower::{lower, CExpr, LowerError};
pub use types::{typecheck, typecheck_with_mutables, Type, TypeError};

/// A full pipeline failure.
#[derive(Clone, PartialEq, Debug)]
pub enum PipelineError {
    /// Parse error.
    Parse(ParseError),
    /// Type error.
    Type(TypeError),
    /// Lowering error (unbound variable that escaped the typechecker —
    /// impossible for typechecked terms, but the API is total).
    Lower(LowerError),
    /// Runtime error (division by zero, fuel).
    Eval(EvalError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "{e}"),
            PipelineError::Type(e) => write!(f, "{e}"),
            PipelineError::Lower(e) => write!(f, "{e}"),
            PipelineError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Output of a compiled run.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// The result rendered structurally (type-directed).
    pub rendered: String,
    /// The program's inferred type.
    pub ty: Type,
}

/// Type-directed rendering of a runtime value.
fn render(m: &mut Mutator<'_>, v: Value, ty: &Type) -> String {
    match (ty, v) {
        (Type::Int, Value::Int(n)) if n < 0 => format!("~{}", n.unsigned_abs()),
        (Type::Int, Value::Int(n)) => n.to_string(),
        (Type::Bool, Value::Bool(b)) => b.to_string(),
        (Type::Unit, Value::Unit) => "()".to_string(),
        (Type::Pair(a, b), p @ Value::Obj(_)) => {
            let va = m.tuple_get(p, 0);
            let vb = m.tuple_get(p, 1);
            let sa = render(m, va, a);
            let sb = render(m, vb, b);
            format!("({sa}, {sb})")
        }
        (Type::Ref(t), r @ Value::Obj(_)) => {
            let inner = m.read_ref(r);
            format!("ref {}", render(m, inner, t))
        }
        (Type::Array(t), a @ Value::Obj(_)) => {
            let n = m.len(a);
            let mut parts = Vec::new();
            for i in 0..n.min(8) {
                let v = m.arr_get(a, i);
                parts.push(render(m, v, t));
            }
            let ell = if n > 8 { ", …" } else { "" };
            format!("[|{}{}|]", parts.join(", "), ell)
        }
        (Type::Fn(..), _) => "<fn>".to_string(),
        (Type::Var(_), _) => "<abstract>".to_string(),
        (t, v) => format!("<ill-rendered {v:?} : {t}>"),
    }
}

/// Compiles an already-parsed expression and runs it on `rt`.
pub fn run_expr_on(rt: &Runtime, e: &Expr, fuel: u64) -> Result<RunOutput, PipelineError> {
    let ty = typecheck(e).map_err(PipelineError::Type)?;
    let core = lower(e).map_err(PipelineError::Lower)?;
    let cx = EvalCx::new(fuel);
    let result: Mutex<Result<String, EvalError>> = Mutex::new(Err(EvalError::Fuel));
    rt.run(|m| {
        let out = eval(m, &cx, &core, Value::Unit);
        *result.lock() = match out {
            Ok(v) => Ok(render(m, v, &ty)),
            Err(e) => Err(e),
        };
        Value::Unit
    });
    let rendered = result.into_inner().map_err(PipelineError::Eval)?;
    Ok(RunOutput { rendered, ty })
}

/// Parses, typechecks, lowers, and runs a source program on `rt`.
pub fn run_source(rt: &Runtime, src: &str, fuel: u64) -> Result<RunOutput, PipelineError> {
    let e = parse(src).map_err(PipelineError::Parse)?;
    run_expr_on(rt, &e, fuel)
}

/// Convenience re-export so callers can keep `Arc<CExpr>` around.
pub type CoreProgram = Arc<CExpr>;

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::RuntimeConfig;

    fn run(src: &str) -> RunOutput {
        let rt = Runtime::new(RuntimeConfig::managed());
        run_source(&rt, src, 10_000_000).unwrap_or_else(|e| panic!("{e}: {src}"))
    }

    #[test]
    fn arithmetic_and_pairs() {
        assert_eq!(run("1 + 2 * 3").rendered, "7");
        assert_eq!(run("(1, (true, ()))").rendered, "(1, (true, ()))");
        assert_eq!(run("fst (1, 2) + snd (3, 4)").rendered, "5");
        assert_eq!(run("0 - 5").rendered, "~5");
    }

    #[test]
    fn closures_and_recursion() {
        assert_eq!(run("(fn x => x + 1) 41").rendered, "42");
        assert_eq!(
            run("let f = fix f n => if n = 0 then 1 else n * f (n - 1) in f 6").rendered,
            "720"
        );
        assert_eq!(
            run("let add = fn x => fn y => x + y in add 40 2").rendered,
            "42",
            "curried closures capture their environment"
        );
    }

    #[test]
    fn refs_hit_real_barriers() {
        let rt = Runtime::new(RuntimeConfig::managed());
        let out = run_source(&rt, "let r = ref 1 in r := !r + 1; !r", 100_000).unwrap();
        assert_eq!(out.rendered, "2");
        assert!(rt.stats().barrier_reads >= 2);
        assert!(rt.stats().barrier_writes >= 1);
    }

    #[test]
    fn par_runs_on_runtime_forks() {
        let rt = Runtime::new(RuntimeConfig::managed().with_dag());
        let out = run_source(&rt, "par(1 + 1, 2 * 2)", 100_000).unwrap();
        assert_eq!(out.rendered, "(2, 4)");
        let dag = rt.take_dag().unwrap();
        assert!(dag.len() >= 4, "a real fork was recorded: {}", dag.len());
    }

    #[test]
    fn type_errors_are_rejected_before_running() {
        let rt = Runtime::new(RuntimeConfig::managed());
        let err = run_source(&rt, "1 + true", 1000).unwrap_err();
        assert!(matches!(err, PipelineError::Type(_)));
        assert_eq!(rt.stats().allocs, 0, "nothing ran");
    }

    #[test]
    fn div_zero_and_fuel_surface() {
        let rt = Runtime::new(RuntimeConfig::managed());
        assert!(matches!(
            run_source(&rt, "1 div 0", 1000).unwrap_err(),
            PipelineError::Eval(EvalError::DivZero)
        ));
        assert!(matches!(
            run_source(&rt, "let w = fix w x => w x in w 0", 5000).unwrap_err(),
            PipelineError::Eval(EvalError::Fuel)
        ));
    }

    #[test]
    fn compiled_entanglement_is_managed() {
        let rt = Runtime::new(RuntimeConfig::managed());
        let out = run_source(&rt, mpl_lang::examples::ENTANGLE_PUBLISH, 1_000_000).unwrap();
        assert_eq!(out.rendered, "3");
        let s = rt.stats();
        assert!(s.entangled_reads >= 1, "compiled deref entangles: {s:?}");
        assert!(s.pins >= 1);
        assert_eq!(s.pinned_bytes, 0, "joins unpin");
    }

    #[test]
    fn compiled_programs_survive_gc_pressure() {
        let cfg = RuntimeConfig {
            policy: mpl_runtime::GcPolicy {
                lgc_trigger_bytes: 1024,
                cgc_trigger_pinned_bytes: 8192,
                immediate_block_free: true,
            },
            store: mpl_runtime::StoreConfig {
                block_words: 32,
                ..Default::default()
            },
            ..RuntimeConfig::managed()
        };
        let rt = Runtime::new(cfg);
        // A sequential allocating loop keeps one task hot so its local
        // collector triggers repeatedly mid-program.
        let src = "let go = fix go n => if n = 0 then 0 else (let p = (n, (n, n)) in let q = fst p in go (n - q + q - 1)) in go 500";
        let out = run_source(&rt, src, 10_000_000).unwrap();
        assert_eq!(out.rendered, "0");
        assert!(rt.stats().lgc_runs > 0, "collections ran mid-program");
        // And the fib example still computes correctly under pressure.
        let out = run_source(&rt, mpl_lang::examples::FIB, 10_000_000).unwrap();
        assert_eq!(out.rendered, "55");
    }
}
