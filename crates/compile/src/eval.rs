//! Executing compiled programs on the entanglement-managed runtime.
//!
//! This is "the back end of the MPL compiler" in miniature: the calculus
//! runs with *all* of its data in the managed hierarchical heap —
//! environments are heap-allocated frames, closures are heap records,
//! `ref`/`!`/`:=` hit the real read/write barriers (so cross-task effects
//! entangle and pin exactly as in compiled Parallel ML), and `par` maps
//! onto the runtime's fork-join with fresh child heaps.
//!
//! ## Heap representation
//!
//! * unit / bool / int — immediates;
//! * pair — a 2-field tuple `[a, b]`;
//! * closure — a 2-field tuple `[Int(code_id * 2 + is_fix), env]`;
//! * environment — unit (empty) or a 2-field tuple `[value, parent]`;
//! * `ref` — a runtime mutable cell.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mpl_lang::BinOp;
use mpl_runtime::{Mutator, Value};

use crate::lower::CExpr;

/// Runtime failures of compiled (hence well-typed) programs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// Division or modulus by zero.
    DivZero,
    /// Array index out of bounds.
    Bounds,
    /// The step budget ran out.
    Fuel,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::DivZero => write!(f, "division by zero"),
            EvalError::Bounds => write!(f, "array index out of bounds"),
            EvalError::Fuel => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Shared evaluation context: the dynamically-built code table (one entry
/// per distinct lambda/fix body) and the fuel counter, both shared across
/// fork branches.
pub struct EvalCx {
    code: Mutex<Vec<(Arc<CExpr>, bool)>>,
    fuel: AtomicU64,
}

impl EvalCx {
    /// Creates a context with the given step budget.
    pub fn new(fuel: u64) -> Arc<EvalCx> {
        Arc::new(EvalCx {
            code: Mutex::new(Vec::new()),
            fuel: AtomicU64::new(fuel),
        })
    }

    fn intern(&self, body: &Arc<CExpr>, is_fix: bool) -> usize {
        let mut table = self.code.lock();
        // Deduplicate by body identity (the same syntactic lambda is
        // usually interned once; duplicates are harmless).
        if let Some(i) = table
            .iter()
            .position(|(b, f)| Arc::ptr_eq(b, body) && *f == is_fix)
        {
            return i;
        }
        table.push((Arc::clone(body), is_fix));
        table.len() - 1
    }

    fn entry(&self, id: usize) -> (Arc<CExpr>, bool) {
        let table = self.code.lock();
        let (b, f) = &table[id];
        (Arc::clone(b), *f)
    }

    fn spend(&self) -> Result<(), EvalError> {
        // Saturating decrement; hitting zero ends the run.
        let prev = self.fuel.fetch_sub(1, Ordering::Relaxed);
        if prev == 0 {
            self.fuel.store(0, Ordering::Relaxed);
            return Err(EvalError::Fuel);
        }
        Ok(())
    }
}

/// Looks up de Bruijn index `i` in a heap environment chain.
fn env_lookup(m: &mut Mutator<'_>, mut env: Value, mut i: usize) -> Value {
    while i > 0 {
        env = m.tuple_get(env, 1);
        i -= 1;
    }
    m.tuple_get(env, 0)
}

/// Extends an environment with one binding (heap allocation).
fn env_bind(m: &mut Mutator<'_>, env: Value, v: Value) -> Value {
    m.alloc_tuple(&[v, env])
}

/// Evaluates `e` under `env`, all state in the managed heap.
///
/// Tail positions (application bodies, `let`/`seq` continuations, `if`
/// branches) iterate instead of recursing, so tail-recursive calculus
/// loops run in constant Rust stack.
pub fn eval(
    m: &mut Mutator<'_>,
    cx: &Arc<EvalCx>,
    e: &Arc<CExpr>,
    env: Value,
) -> Result<Value, EvalError> {
    let mut e = Arc::clone(e);
    let mut env = env;
    loop {
        cx.spend()?;
        let cur = Arc::clone(&e);
        match &*cur {
            CExpr::Var(i) => return Ok(env_lookup(m, env, *i)),
            CExpr::Int(n) => return Ok(Value::Int(*n)),
            CExpr::Bool(b) => return Ok(Value::Bool(*b)),
            CExpr::Unit => return Ok(Value::Unit),
            CExpr::Lam(body) => {
                let id = cx.intern(body, false);
                return Ok(m.alloc_tuple(&[Value::Int((id * 2) as i64), env]));
            }
            CExpr::Fix(body) => {
                let id = cx.intern(body, true);
                return Ok(m.alloc_tuple(&[Value::Int((id * 2 + 1) as i64), env]));
            }
            CExpr::App(f, a) => {
                let mark = m.mark();
                let henv = m.root(env);
                let fv = eval(m, cx, f, env)?;
                let hf = m.root(fv);
                let env2 = m.get(&henv);
                let av = eval(m, cx, a, env2)?;
                let fv = m.get(&hf);
                let tag = m.tuple_get(fv, 0).expect_int() as usize;
                let fenv = m.tuple_get(fv, 1);
                let (body, is_fix) = cx.entry(tag / 2);
                debug_assert_eq!(is_fix, tag % 2 == 1);
                // Call environment: [x, (f,)? closure-env].
                let ha = m.root(av);
                let call_env = if is_fix {
                    let hfe = m.root(fenv);
                    let fv2 = m.get(&hf);
                    let fe = m.get(&hfe);
                    let with_self = env_bind(m, fe, fv2);
                    let a2 = m.get(&ha);
                    env_bind(m, with_self, a2)
                } else {
                    let hfe = m.root(fenv);
                    let fe = m.get(&hfe);
                    let a2 = m.get(&ha);
                    env_bind(m, fe, a2)
                };
                m.release(mark);
                e = body;
                env = call_env;
            }
            CExpr::Pair(a, b) => {
                let mark = m.mark();
                let henv = m.root(env);
                let va = eval(m, cx, a, env)?;
                let ha = m.root(va);
                let env2 = m.get(&henv);
                let vb = eval(m, cx, b, env2)?;
                let va = m.get(&ha);
                let p = m.alloc_tuple(&[va, vb]);
                m.release(mark);
                return Ok(p);
            }
            CExpr::Fst(a) => {
                let v = eval(m, cx, a, env)?;
                return Ok(m.tuple_get(v, 0));
            }
            CExpr::Snd(a) => {
                let v = eval(m, cx, a, env)?;
                return Ok(m.tuple_get(v, 1));
            }
            CExpr::Let(rhs, body) => {
                let mark = m.mark();
                let henv = m.root(env);
                let v = eval(m, cx, rhs, env)?;
                let env2 = m.get(&henv);
                let env3 = env_bind(m, env2, v);
                m.release(mark);
                e = Arc::clone(body);
                env = env3;
            }
            CExpr::If(c, t, f) => {
                let mark = m.mark();
                let henv = m.root(env);
                let cv = eval(m, cx, c, env)?;
                let env2 = m.get(&henv);
                m.release(mark);
                match cv {
                    Value::Bool(true) => e = Arc::clone(t),
                    Value::Bool(false) => e = Arc::clone(f),
                    other => unreachable!("typechecked condition was {other:?}"),
                }
                env = env2;
            }
            CExpr::Ref(a) => {
                let v = eval(m, cx, a, env)?;
                return Ok(m.alloc_ref(v));
            }
            CExpr::Deref(a) => {
                let r = eval(m, cx, a, env)?;
                // The real read barrier: remote pointees pin here.
                return Ok(m.read_ref(r));
            }
            CExpr::Assign(a, b) => {
                let mark = m.mark();
                let henv = m.root(env);
                let r = eval(m, cx, a, env)?;
                let hr = m.root(r);
                let env2 = m.get(&henv);
                let v = eval(m, cx, b, env2)?;
                let r = m.get(&hr);
                // The real write barrier: remsets and entangled-write pins.
                m.write_ref(r, v);
                m.release(mark);
                return Ok(Value::Unit);
            }
            CExpr::Par(a, b) => {
                let (a, b) = (Arc::clone(a), Arc::clone(b));
                let mark = m.mark();
                let henv = m.root(env);
                let err: Mutex<Option<EvalError>> = Mutex::new(None);
                let (va, vb) = m.fork(
                    |m| {
                        let env = m.get(&henv);
                        match eval(m, cx, &a, env) {
                            Ok(v) => v,
                            Err(e) => {
                                *err.lock() = Some(e);
                                Value::Unit
                            }
                        }
                    },
                    |m| {
                        let env = m.get(&henv);
                        match eval(m, cx, &b, env) {
                            Ok(v) => v,
                            Err(e) => {
                                *err.lock() = Some(e);
                                Value::Unit
                            }
                        }
                    },
                );
                if let Some(e) = err.lock().take() {
                    return Err(e);
                }
                let ha = m.root(va);
                let hb = m.root(vb);
                let (va, vb) = (m.get(&ha), m.get(&hb));
                let p = m.alloc_tuple(&[va, vb]);
                m.release(mark);
                return Ok(p);
            }
            CExpr::Seq(a, b) => {
                let mark = m.mark();
                let henv = m.root(env);
                let _ = eval(m, cx, a, env)?;
                let env2 = m.get(&henv);
                m.release(mark);
                e = Arc::clone(b);
                env = env2;
            }
            CExpr::Array(n, init) => {
                let mark = m.mark();
                let henv = m.root(env);
                let nv = eval(m, cx, n, env)?;
                let env2 = m.get(&henv);
                let iv = eval(m, cx, init, env2)?;
                let len = nv.expect_int();
                if len < 0 {
                    return Err(EvalError::Bounds);
                }
                let arr = m.alloc_array(len as usize, iv);
                m.release(mark);
                return Ok(arr);
            }
            CExpr::Sub(a, i) => {
                let mark = m.mark();
                let henv = m.root(env);
                let av = eval(m, cx, a, env)?;
                let ha = m.root(av);
                let env2 = m.get(&henv);
                let iv = eval(m, cx, i, env2)?;
                let av = m.get(&ha);
                m.release(mark);
                let idx = iv.expect_int();
                if idx < 0 || idx as usize >= m.len(av) {
                    return Err(EvalError::Bounds);
                }
                // The real array read barrier.
                return Ok(m.arr_get(av, idx as usize));
            }
            CExpr::Update(a, i, v) => {
                let mark = m.mark();
                let henv = m.root(env);
                let av = eval(m, cx, a, env)?;
                let ha = m.root(av);
                let env2 = m.get(&henv);
                let iv = eval(m, cx, i, env2)?;
                let hi = m.root(iv);
                let env3 = m.get(&henv);
                let vv = eval(m, cx, v, env3)?;
                let (av, iv) = (m.get(&ha), m.get(&hi));
                let idx = iv.expect_int();
                if idx < 0 || idx as usize >= m.len(av) {
                    return Err(EvalError::Bounds);
                }
                // The real array write barrier.
                m.arr_set(av, idx as usize, vv);
                m.release(mark);
                return Ok(Value::Unit);
            }
            CExpr::Length(a) => {
                let av = eval(m, cx, a, env)?;
                return Ok(Value::Int(m.len(av) as i64));
            }
            CExpr::Bin(op, a, b) => {
                let mark = m.mark();
                let henv = m.root(env);
                // Short-circuit operators evaluate lazily.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let va = eval(m, cx, a, env)?;
                    let env2 = m.get(&henv);
                    m.release(mark);
                    match (op, va) {
                        (BinOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
                        (BinOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
                        _ => {
                            e = Arc::clone(b);
                            env = env2;
                            continue;
                        }
                    }
                }
                let va = eval(m, cx, a, env)?;
                let env2 = m.get(&henv);
                let vb = eval(m, cx, b, env2)?;
                m.release(mark);
                return prim(*op, va, vb);
            }
        }
    }
}

fn prim(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    let ints = |a: Value, b: Value| (a.expect_int(), b.expect_int());
    Ok(match op {
        Add => {
            let (x, y) = ints(a, b);
            Value::Int(x.wrapping_add(y))
        }
        Sub => {
            let (x, y) = ints(a, b);
            Value::Int(x.wrapping_sub(y))
        }
        Mul => {
            let (x, y) = ints(a, b);
            Value::Int(x.wrapping_mul(y))
        }
        Div => {
            let (x, y) = ints(a, b);
            if y == 0 {
                return Err(EvalError::DivZero);
            }
            Value::Int(x.div_euclid(y))
        }
        Mod => {
            let (x, y) = ints(a, b);
            if y == 0 {
                return Err(EvalError::DivZero);
            }
            Value::Int(x.rem_euclid(y))
        }
        Lt => {
            let (x, y) = ints(a, b);
            Value::Bool(x < y)
        }
        Le => {
            let (x, y) = ints(a, b);
            Value::Bool(x <= y)
        }
        Gt => {
            let (x, y) = ints(a, b);
            Value::Bool(x > y)
        }
        Ge => {
            let (x, y) = ints(a, b);
            Value::Bool(x >= y)
        }
        Eq => Value::Bool(a == b),
        And | Or => unreachable!("short-circuit handled above"),
    })
}
