//! Hindley–Milner type inference for λ-par-ref.
//!
//! The paper's language is typed ML; this module supplies the front-end
//! type discipline: unification-based inference with let-generalization
//! and the value restriction (only syntactic values generalize, which
//! keeps `ref` sound, exactly as in Standard ML).

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use mpl_lang::{BinOp, Expr};

/// Types.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Type {
    /// Integers.
    Int,
    /// Booleans.
    Bool,
    /// Unit.
    Unit,
    /// Pairs.
    Pair(Rc<Type>, Rc<Type>),
    /// Mutable references.
    Ref(Rc<Type>),
    /// Mutable arrays.
    Array(Rc<Type>),
    /// Functions.
    Fn(Rc<Type>, Rc<Type>),
    /// Futures (`future e` in the semantics-level calculus).
    Future(Rc<Type>),
    /// An inference variable.
    Var(u32),
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::Unit => write!(f, "unit"),
            Type::Pair(a, b) => write!(f, "({a} * {b})"),
            Type::Ref(t) => write!(f, "({t} ref)"),
            Type::Array(t) => write!(f, "({t} array)"),
            Type::Fn(a, b) => write!(f, "({a} -> {b})"),
            Type::Future(t) => write!(f, "({t} future)"),
            Type::Var(v) => write!(f, "'t{v}"),
        }
    }
}

/// A type scheme: universally quantified inference variables.
#[derive(Clone, Debug)]
struct Scheme {
    vars: Vec<u32>,
    ty: Type,
}

/// Type errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeError {
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.msg)
    }
}

impl std::error::Error for TypeError {}

/// The inference engine: a union-find-ish substitution map.
struct Infer {
    subst: HashMap<u32, Type>,
    next: u32,
    /// Element types of every `ref`/`array` allocation site, recorded for
    /// the static disentanglement analysis (resolved after inference).
    mut_elems: Vec<Type>,
}

impl Infer {
    fn fresh(&mut self) -> Type {
        self.next += 1;
        Type::Var(self.next - 1)
    }

    /// Resolves the outermost variable chain.
    fn shallow(&self, t: &Type) -> Type {
        let mut t = t.clone();
        while let Type::Var(v) = t {
            match self.subst.get(&v) {
                Some(next) => t = next.clone(),
                None => return Type::Var(v),
            }
        }
        t
    }

    /// Fully applies the substitution.
    fn resolve(&self, t: &Type) -> Type {
        match self.shallow(t) {
            Type::Pair(a, b) => Type::Pair(Rc::new(self.resolve(&a)), Rc::new(self.resolve(&b))),
            Type::Ref(a) => Type::Ref(Rc::new(self.resolve(&a))),
            Type::Array(a) => Type::Array(Rc::new(self.resolve(&a))),
            Type::Future(a) => Type::Future(Rc::new(self.resolve(&a))),
            Type::Fn(a, b) => Type::Fn(Rc::new(self.resolve(&a)), Rc::new(self.resolve(&b))),
            other => other,
        }
    }

    fn occurs(&self, v: u32, t: &Type) -> bool {
        match self.shallow(t) {
            Type::Var(w) => v == w,
            Type::Pair(a, b) | Type::Fn(a, b) => self.occurs(v, &a) || self.occurs(v, &b),
            Type::Ref(a) | Type::Array(a) | Type::Future(a) => self.occurs(v, &a),
            _ => false,
        }
    }

    fn unify(&mut self, a: &Type, b: &Type) -> Result<(), TypeError> {
        let (a, b) = (self.shallow(a), self.shallow(b));
        match (&a, &b) {
            (Type::Var(v), _) => {
                if let Type::Var(w) = b {
                    if *v == w {
                        return Ok(());
                    }
                }
                if self.occurs(*v, &b) {
                    return Err(TypeError {
                        msg: format!("infinite type: 't{v} = {}", self.resolve(&b)),
                    });
                }
                self.subst.insert(*v, b);
                Ok(())
            }
            (_, Type::Var(_)) => self.unify(&b, &a),
            (Type::Int, Type::Int) | (Type::Bool, Type::Bool) | (Type::Unit, Type::Unit) => Ok(()),
            (Type::Pair(a1, a2), Type::Pair(b1, b2)) | (Type::Fn(a1, a2), Type::Fn(b1, b2)) => {
                self.unify(a1, b1)?;
                self.unify(a2, b2)
            }
            (Type::Ref(x), Type::Ref(y))
            | (Type::Array(x), Type::Array(y))
            | (Type::Future(x), Type::Future(y)) => self.unify(x, y),
            _ => Err(TypeError {
                msg: format!(
                    "cannot unify {} with {}",
                    self.resolve(&a),
                    self.resolve(&b)
                ),
            }),
        }
    }

    fn free_vars(&self, t: &Type, out: &mut Vec<u32>) {
        match self.shallow(t) {
            Type::Var(v) if !out.contains(&v) => out.push(v),
            Type::Pair(a, b) | Type::Fn(a, b) => {
                self.free_vars(&a, out);
                self.free_vars(&b, out);
            }
            Type::Ref(a) | Type::Array(a) | Type::Future(a) => self.free_vars(&a, out),
            _ => {}
        }
    }

    fn instantiate(&mut self, s: &Scheme) -> Type {
        let mut map = HashMap::new();
        for &v in &s.vars {
            map.insert(v, self.fresh());
        }
        self.subst_scheme(&s.ty, &map)
    }

    fn subst_scheme(&self, t: &Type, map: &HashMap<u32, Type>) -> Type {
        match self.shallow(t) {
            Type::Var(v) => map.get(&v).cloned().unwrap_or(Type::Var(v)),
            Type::Pair(a, b) => Type::Pair(
                Rc::new(self.subst_scheme(&a, map)),
                Rc::new(self.subst_scheme(&b, map)),
            ),
            Type::Fn(a, b) => Type::Fn(
                Rc::new(self.subst_scheme(&a, map)),
                Rc::new(self.subst_scheme(&b, map)),
            ),
            Type::Ref(a) => Type::Ref(Rc::new(self.subst_scheme(&a, map))),
            Type::Array(a) => Type::Array(Rc::new(self.subst_scheme(&a, map))),
            other => other,
        }
    }
}

type Env = Vec<(String, Scheme)>;

fn lookup(env: &Env, x: &str) -> Option<Scheme> {
    env.iter()
        .rev()
        .find(|(n, _)| n == x)
        .map(|(_, s)| s.clone())
}

/// True for syntactic values (the value restriction: only these
/// generalize at `let`).
fn is_value(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Int(_) | Expr::Bool(_) | Expr::Unit | Expr::Var(_) | Expr::Lam(..) | Expr::Fix(..)
    ) || matches!(e, Expr::Pair(a, b) if is_value(a) && is_value(b))
}

fn infer(inf: &mut Infer, env: &mut Env, e: &Expr) -> Result<Type, TypeError> {
    match e {
        Expr::Int(_) => Ok(Type::Int),
        Expr::Bool(_) => Ok(Type::Bool),
        Expr::Unit => Ok(Type::Unit),
        Expr::Var(x) => {
            let s = lookup(env, x).ok_or_else(|| TypeError {
                msg: format!("unbound variable `{x}`"),
            })?;
            Ok(inf.instantiate(&s))
        }
        Expr::Lam(x, body) => {
            let a = inf.fresh();
            env.push((
                x.clone(),
                Scheme {
                    vars: vec![],
                    ty: a.clone(),
                },
            ));
            let b = infer(inf, env, body)?;
            env.pop();
            Ok(Type::Fn(Rc::new(a), Rc::new(b)))
        }
        Expr::Fix(f, x, body) => {
            let a = inf.fresh();
            let b = inf.fresh();
            let fty = Type::Fn(Rc::new(a.clone()), Rc::new(b.clone()));
            env.push((
                f.clone(),
                Scheme {
                    vars: vec![],
                    ty: fty.clone(),
                },
            ));
            env.push((
                x.clone(),
                Scheme {
                    vars: vec![],
                    ty: a,
                },
            ));
            let body_t = infer(inf, env, body)?;
            env.pop();
            env.pop();
            inf.unify(&body_t, &b)?;
            Ok(fty)
        }
        Expr::App(f, arg) => {
            let ft = infer(inf, env, f)?;
            let at = infer(inf, env, arg)?;
            let r = inf.fresh();
            inf.unify(&ft, &Type::Fn(Rc::new(at), Rc::new(r.clone())))?;
            Ok(r)
        }
        Expr::Pair(a, b) => {
            let ta = infer(inf, env, a)?;
            let tb = infer(inf, env, b)?;
            Ok(Type::Pair(Rc::new(ta), Rc::new(tb)))
        }
        Expr::Fst(p) => {
            let tp = infer(inf, env, p)?;
            let (a, b) = (inf.fresh(), inf.fresh());
            inf.unify(&tp, &Type::Pair(Rc::new(a.clone()), Rc::new(b)))?;
            Ok(a)
        }
        Expr::Snd(p) => {
            let tp = infer(inf, env, p)?;
            let (a, b) = (inf.fresh(), inf.fresh());
            inf.unify(&tp, &Type::Pair(Rc::new(a), Rc::new(b.clone())))?;
            Ok(b)
        }
        Expr::Let(x, rhs, body) => {
            let t_rhs = infer(inf, env, rhs)?;
            // Value restriction: generalize only syntactic values.
            let scheme = if is_value(rhs) {
                let mut rhs_vars = Vec::new();
                inf.free_vars(&t_rhs, &mut rhs_vars);
                let mut env_vars = Vec::new();
                for (_, s) in env.iter() {
                    inf.free_vars(&s.ty, &mut env_vars);
                }
                let gen: Vec<u32> = rhs_vars
                    .into_iter()
                    .filter(|v| !env_vars.contains(v))
                    .collect();
                Scheme {
                    vars: gen,
                    ty: t_rhs,
                }
            } else {
                Scheme {
                    vars: vec![],
                    ty: t_rhs,
                }
            };
            env.push((x.clone(), scheme));
            let t = infer(inf, env, body)?;
            env.pop();
            Ok(t)
        }
        Expr::If(c, t, e2) => {
            let tc = infer(inf, env, c)?;
            inf.unify(&tc, &Type::Bool)?;
            let tt = infer(inf, env, t)?;
            let te = infer(inf, env, e2)?;
            inf.unify(&tt, &te)?;
            Ok(tt)
        }
        Expr::Ref(v) => {
            let t = infer(inf, env, v)?;
            inf.mut_elems.push(t.clone());
            Ok(Type::Ref(Rc::new(t)))
        }
        Expr::Deref(r) => {
            let t = infer(inf, env, r)?;
            let a = inf.fresh();
            inf.unify(&t, &Type::Ref(Rc::new(a.clone())))?;
            Ok(a)
        }
        Expr::Assign(r, v) => {
            let tr = infer(inf, env, r)?;
            let tv = infer(inf, env, v)?;
            inf.unify(&tr, &Type::Ref(Rc::new(tv)))?;
            Ok(Type::Unit)
        }
        Expr::Par(a, b) => {
            let ta = infer(inf, env, a)?;
            let tb = infer(inf, env, b)?;
            Ok(Type::Pair(Rc::new(ta), Rc::new(tb)))
        }
        Expr::Future(body) => {
            let t = infer(inf, env, body)?;
            // Future results cross a concurrency boundary: record them
            // alongside mutable element types for the disentanglement
            // analysis.
            inf.mut_elems.push(t.clone());
            Ok(Type::Future(Rc::new(t)))
        }
        Expr::Touch(a) => {
            let ta = infer(inf, env, a)?;
            let r = inf.fresh();
            inf.unify(&ta, &Type::Future(Rc::new(r.clone())))?;
            Ok(r)
        }
        Expr::Array(n, init) => {
            let tn = infer(inf, env, n)?;
            inf.unify(&tn, &Type::Int)?;
            let ti = infer(inf, env, init)?;
            inf.mut_elems.push(ti.clone());
            Ok(Type::Array(Rc::new(ti)))
        }
        Expr::Sub(a, i) => {
            let ta = infer(inf, env, a)?;
            let ti = infer(inf, env, i)?;
            inf.unify(&ti, &Type::Int)?;
            let elem = inf.fresh();
            inf.unify(&ta, &Type::Array(Rc::new(elem.clone())))?;
            Ok(elem)
        }
        Expr::Update(a, i, v) => {
            let ta = infer(inf, env, a)?;
            let ti = infer(inf, env, i)?;
            inf.unify(&ti, &Type::Int)?;
            let tv = infer(inf, env, v)?;
            inf.unify(&ta, &Type::Array(Rc::new(tv)))?;
            Ok(Type::Unit)
        }
        Expr::Length(a) => {
            let ta = infer(inf, env, a)?;
            let elem = inf.fresh();
            inf.unify(&ta, &Type::Array(Rc::new(elem)))?;
            Ok(Type::Int)
        }
        Expr::Seq(a, b) => {
            let _ = infer(inf, env, a)?;
            infer(inf, env, b)
        }
        Expr::Bin(op, a, b) => {
            let ta = infer(inf, env, a)?;
            let tb = infer(inf, env, b)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    inf.unify(&ta, &Type::Int)?;
                    inf.unify(&tb, &Type::Int)?;
                    Ok(Type::Int)
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    inf.unify(&ta, &Type::Int)?;
                    inf.unify(&tb, &Type::Int)?;
                    Ok(Type::Bool)
                }
                BinOp::Eq => {
                    inf.unify(&ta, &tb)?;
                    Ok(Type::Bool)
                }
                BinOp::And | BinOp::Or => {
                    inf.unify(&ta, &Type::Bool)?;
                    inf.unify(&tb, &Type::Bool)?;
                    Ok(Type::Bool)
                }
            }
        }
    }
}

/// Infers the type of a closed program.
pub fn typecheck(e: &Expr) -> Result<Type, TypeError> {
    typecheck_with_mutables(e).map(|(t, _)| t)
}

/// Infers the program type and additionally returns the resolved element
/// type of every `ref`/`array` allocation site in the program — the raw
/// material for the static disentanglement analysis
/// ([`crate::disentangle`]).
pub fn typecheck_with_mutables(e: &Expr) -> Result<(Type, Vec<Type>), TypeError> {
    let mut inf = Infer {
        subst: HashMap::new(),
        next: 0,
        mut_elems: Vec::new(),
    };
    let mut env = Vec::new();
    let t = infer(&mut inf, &mut env, e)?;
    let t = inf.resolve(&t);
    let elems: Vec<Type> = std::mem::take(&mut inf.mut_elems)
        .iter()
        .map(|m| inf.resolve(m))
        .collect();
    Ok((t, elems))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::parse;

    fn ty(src: &str) -> Result<String, TypeError> {
        typecheck(&parse(src).unwrap()).map(|t| t.to_string())
    }

    #[test]
    fn basics() {
        assert_eq!(ty("1 + 2").unwrap(), "int");
        assert_eq!(ty("1 < 2").unwrap(), "bool");
        assert_eq!(ty("()").unwrap(), "unit");
        assert_eq!(ty("(1, true)").unwrap(), "(int * bool)");
        assert_eq!(ty("fn x => x + 1").unwrap(), "(int -> int)");
        assert_eq!(ty("ref 3").unwrap(), "(int ref)");
        assert_eq!(ty("let r = ref 3 in !r").unwrap(), "int");
        assert_eq!(ty("par(1, true)").unwrap(), "(int * bool)");
    }

    #[test]
    fn inference_flows_through_application() {
        assert_eq!(ty("(fn f => f 1) (fn x => x + 1)").unwrap(), "int");
        assert_eq!(
            ty("let id = fn x => x in (id 1, id true)").unwrap(),
            "(int * bool)",
            "let-polymorphism"
        );
    }

    #[test]
    fn fix_types_recursive_functions() {
        assert_eq!(
            ty("fix f n => if n = 0 then 1 else n * f (n - 1)").unwrap(),
            "(int -> int)"
        );
        assert_eq!(
            ty("let fib = fix fib n => if n < 2 then n else (let p = par(fib (n - 1), fib (n - 2)) in fst p + snd p) in fib 10").unwrap(),
            "int"
        );
    }

    #[test]
    fn value_restriction_blocks_unsound_refs() {
        // `ref (fn x => x)` must NOT generalize: using it at two types is
        // the classic unsoundness.
        let bad = ty("let r = ref (fn x => x) in (r := (fn y => y + 1); (!r) true)");
        assert!(bad.is_err(), "value restriction must reject: {bad:?}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(ty("1 + true").is_err());
        assert!(ty("if 1 then 2 else 3").is_err());
        assert!(ty("fst 3").is_err());
        assert!(ty("x").is_err());
        assert!(ty("!3").is_err());
        assert!(ty("(fn x => x x)").is_err(), "occurs check");
    }

    #[test]
    fn assignments_are_unit() {
        assert_eq!(ty("let r = ref 0 in r := 1").unwrap(), "unit");
        assert!(ty("let r = ref 0 in r := true").is_err());
    }

    #[test]
    fn all_examples_typecheck() {
        for (name, src) in mpl_lang::examples::ALL {
            let t = ty(src);
            assert!(t.is_ok(), "{name}: {t:?}");
        }
    }
}
