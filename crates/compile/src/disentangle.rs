//! Static disentanglement analysis.
//!
//! A conservative, type-guided check proving that a program can *never*
//! entangle — under any schedule — so its barriers can be elided
//! entirely (`Mode::NoEntanglementBarrier` becomes safe, recovering the
//! paper's "disentangled programs pay nothing" property at compile time
//! rather than per-access).
//!
//! # The argument
//!
//! Entanglement is a task acquiring (reading a pointer to) an object
//! allocated by a *concurrent* task. In λ-par-ref, pointers cross a
//! concurrency boundary only through **pre-existing mutable state**: one
//! branch stores a pointer into a ref or array that the concurrent
//! sibling also reaches. Immutable data (pairs, closures, results) flows
//! only parent→child at forks and child→parent at joins — never between
//! concurrent siblings.
//!
//! Therefore, if every `ref` and `array` in the program holds only
//! *flat* values (int / bool / unit), no pointer can ever move through
//! mutable state, no task can acquire a sibling's object, and the
//! program is disentangled under every schedule. A program with no `par`
//! (and no `future`) at all is trivially disentangled too.
//!
//! Futures add one more channel: `touch` reveals the future's *result*
//! to arbitrary tasks, so future result types are checked for flatness
//! exactly like mutable element types.
//!
//! The check is *sound but incomplete*: `entangle_publish` (a `ref` of a
//! pair) is rejected even under schedules where the racing read happens
//! to miss. That is the right polarity for a barrier-eliding analysis.

use std::fmt;

use mpl_lang::Expr;

use crate::types::{typecheck_with_mutables, Type, TypeError};

/// The analysis result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The program provably never entangles; barriers may be elided.
    Disentangled(Reason),
    /// The program *may* entangle (conservative): the listed cross-task
    /// channels (`ref`/`array` element types, `future` result types) can
    /// carry pointers.
    MayEntangle(Vec<String>),
}

/// Why a program is statically disentangled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reason {
    /// No `par` or `future` anywhere: a sequential program cannot have
    /// concurrent tasks.
    Sequential,
    /// Every cross-task channel type (`ref`/`array` elements, `future`
    /// results) is flat (int/bool/unit), so no pointer can cross a
    /// concurrency boundary.
    FlatMutableState,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Disentangled(Reason::Sequential) => {
                write!(f, "disentangled (no parallelism)")
            }
            Verdict::Disentangled(Reason::FlatMutableState) => {
                write!(f, "disentangled (mutable state is pointer-free)")
            }
            Verdict::MayEntangle(sites) => {
                write!(f, "may entangle (pointer-carrying cross-task channels: ")?;
                for (i, s) in sites.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl Verdict {
    /// True if barriers can be elided.
    pub fn is_disentangled(&self) -> bool {
        matches!(self, Verdict::Disentangled(_))
    }
}

/// A type through which no heap pointer can flow.
fn is_flat(t: &Type) -> bool {
    matches!(t, Type::Int | Type::Bool | Type::Unit)
}

fn contains_par(e: &Expr) -> bool {
    match e {
        Expr::Par(_, _) | Expr::Future(_) => true,
        Expr::Var(_) | Expr::Int(_) | Expr::Bool(_) | Expr::Unit => false,
        Expr::Lam(_, b) | Expr::Fix(_, _, b) => contains_par(b),
        Expr::Fst(a)
        | Expr::Snd(a)
        | Expr::Ref(a)
        | Expr::Deref(a)
        | Expr::Length(a)
        | Expr::Touch(a) => contains_par(a),
        Expr::App(a, b)
        | Expr::Pair(a, b)
        | Expr::Assign(a, b)
        | Expr::Array(a, b)
        | Expr::Sub(a, b)
        | Expr::Seq(a, b)
        | Expr::Bin(_, a, b)
        | Expr::Let(_, a, b) => contains_par(a) || contains_par(b),
        Expr::If(a, b, c) | Expr::Update(a, b, c) => {
            contains_par(a) || contains_par(b) || contains_par(c)
        }
    }
}

/// Runs the analysis on a closed, well-typed program.
///
/// Returns a type error if the program does not typecheck (the analysis
/// is type-guided).
pub fn analyze(e: &Expr) -> Result<Verdict, TypeError> {
    let (_, mut_elems) = typecheck_with_mutables(e)?;
    if !contains_par(e) {
        return Ok(Verdict::Disentangled(Reason::Sequential));
    }
    let offenders: Vec<String> = mut_elems
        .iter()
        .filter(|t| !is_flat(t))
        .map(|t| t.to_string())
        .collect();
    if offenders.is_empty() {
        Ok(Verdict::Disentangled(Reason::FlatMutableState))
    } else {
        Ok(Verdict::MayEntangle(offenders))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::parse;

    fn verdict(src: &str) -> Verdict {
        analyze(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn pure_parallel_program_is_disentangled() {
        let v = verdict("let p = par(1 + 2, 3 * 4) in fst p + snd p");
        assert_eq!(v, Verdict::Disentangled(Reason::FlatMutableState));
    }

    #[test]
    fn sequential_ref_of_pair_is_disentangled() {
        // Pointer-holding cell, but no par: nothing is concurrent.
        let v = verdict("let r = ref (1, 2) in fst !r");
        assert_eq!(v, Verdict::Disentangled(Reason::Sequential));
    }

    #[test]
    fn int_cells_across_par_are_disentangled() {
        let v = verdict("let r = ref 0 in let p = par(r := 1, r := 2) in !r");
        assert_eq!(v, Verdict::Disentangled(Reason::FlatMutableState));
    }

    #[test]
    fn pointer_cell_across_par_may_entangle() {
        let v = verdict("let r = ref (0, 0) in let p = par(r := (1, 2), fst !r) in snd p");
        match v {
            Verdict::MayEntangle(sites) => assert!(sites[0].contains('*')),
            other => panic!("expected MayEntangle, got {other:?}"),
        }
    }

    #[test]
    fn array_of_refs_may_entangle() {
        let v = verdict(
            "let a = array(4, ref 0) in let p = par(update(a, 0, ref 1), !(sub(a, 0))) in snd p",
        );
        assert!(!v.is_disentangled());
    }

    #[test]
    fn flat_arrays_across_par_are_disentangled() {
        let v = verdict(
            "let a = array(8, 0) in let p = par(update(a, 0, 1), update(a, 1, 2)) in sub(a, 0)",
        );
        assert_eq!(v, Verdict::Disentangled(Reason::FlatMutableState));
    }

    #[test]
    fn verdict_display_is_informative() {
        let v = verdict("let r = ref (1, 2) in let p = par(!r, !r) in 0");
        let shown = v.to_string();
        assert!(shown.contains("may entangle"), "{shown}");
        let v = verdict("par(1, 2)");
        assert_eq!(
            v.to_string(),
            "disentangled (mutable state is pointer-free)"
        );
    }

    #[test]
    fn ill_typed_programs_error() {
        assert!(analyze(&parse("1 + true").unwrap()).is_err());
    }

    #[test]
    fn flat_future_results_are_disentangled() {
        let v = verdict("let f = future (1 + 2) in touch f + 1");
        assert_eq!(v, Verdict::Disentangled(Reason::FlatMutableState));
    }

    #[test]
    fn pointer_future_results_may_entangle() {
        // The touch reveals a heap pair allocated by the future task.
        let v = verdict("let f = future (1, 2) in fst (touch f)");
        match v {
            Verdict::MayEntangle(sites) => assert!(sites[0].contains('*'), "{sites:?}"),
            other => panic!("expected MayEntangle, got {other:?}"),
        }
    }

    #[test]
    fn futures_count_as_parallelism() {
        // No `par`, but a future still spawns a concurrent task, so the
        // "sequential" shortcut must not fire.
        let v = verdict("let f = future (1, 2) in 0");
        assert!(!v.is_disentangled());
    }

    #[test]
    fn touch_types_flow_through_inference() {
        use crate::typecheck;
        let t = typecheck(&parse("let f = future (1, true) in touch f").unwrap()).unwrap();
        assert_eq!(t.to_string(), "(int * bool)");
        let t = typecheck(&parse("future 5").unwrap()).unwrap();
        assert_eq!(t.to_string(), "(int future)");
    }
}
