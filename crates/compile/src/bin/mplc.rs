//! `mplc` — the command-line front end to the pipeline: typecheck and run
//! λ-par-ref programs on the entanglement-managed runtime.
//!
//! ```text
//! mplc <file.mpl> [--mode managed|detect|nobarrier|auto] [--threads N]
//!                 [--stats] [--report] [--dot] [--sim P1,P2,...] [--check]
//!                 [--fuel N] [--interp [--schedule depth|rr|random:N]]
//! ```
//!
//! `--check` stops after type checking. `--sim` records the computation
//! DAG and reports simulated wall-clock and speedup for the given
//! processor counts. `--stats` prints the runtime's cost-metric counters;
//! `--report` prints the final heap-hierarchy snapshot. `--mode auto`
//! runs the static disentanglement analysis and elides barriers when the
//! program provably never entangles. `--interp` runs the program on the
//! *formal semantics* instead of the compiled backend — required for the
//! futures extension (`future`/`touch`), and useful with `--schedule` to
//! explore entanglement under different interleavings.

use std::process::ExitCode;

use mpl_compile::{analyze, run_source, typecheck};
use mpl_lang::{parse, run_expr, LangMode, Options, Schedule};
use mpl_runtime::{simulate, Mode, Runtime, RuntimeConfig, SimParams};

struct Args {
    file: String,
    mode: Mode,
    auto: bool,
    threads: usize,
    stats: bool,
    report: bool,
    dot: bool,
    interp: bool,
    schedule: Schedule,
    sim: Vec<usize>,
    check_only: bool,
    fuel: u64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mplc <file.mpl> [--mode managed|detect|nobarrier|auto] [--threads N] \
         [--stats] [--report] [--sim P1,P2,...] [--check] [--fuel N] \
         [--interp [--schedule depth|rr|random:N]]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        file: String::new(),
        mode: Mode::Managed,
        auto: false,
        threads: 1,
        stats: false,
        report: false,
        dot: false,
        interp: false,
        schedule: Schedule::DepthFirst,
        sim: Vec::new(),
        check_only: false,
        fuel: 100_000_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => match it.next().as_deref() {
                Some("managed") => args.mode = Mode::Managed,
                Some("detect") => args.mode = Mode::DetectOnly,
                Some("nobarrier") => args.mode = Mode::NoEntanglementBarrier,
                Some("auto") => args.auto = true,
                _ => return Err(usage()),
            },
            "--threads" => {
                args.threads = it.next().and_then(|s| s.parse().ok()).ok_or_else(usage)?
            }
            "--fuel" => args.fuel = it.next().and_then(|s| s.parse().ok()).ok_or_else(usage)?,
            "--stats" => args.stats = true,
            "--report" => args.report = true,
            "--dot" => args.dot = true,
            "--interp" => args.interp = true,
            "--schedule" => {
                args.schedule = match it.next().as_deref() {
                    Some("depth") => Schedule::DepthFirst,
                    Some("rr") => Schedule::RoundRobin,
                    Some(spec) if spec.starts_with("random:") => {
                        let seed = spec["random:".len()..].parse().map_err(|_| usage())?;
                        Schedule::Random(seed)
                    }
                    _ => return Err(usage()),
                }
            }
            "--check" => args.check_only = true,
            "--sim" => {
                let spec = it.next().ok_or_else(usage)?;
                args.sim = spec
                    .split(',')
                    .map(|p| p.parse().map_err(|_| usage()))
                    .collect::<Result<_, _>>()?;
            }
            f if !f.starts_with('-') && args.file.is_empty() => args.file = f.to_string(),
            _ => return Err(usage()),
        }
    }
    if args.file.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mplc: cannot read {}: {e}", args.file);
            return ExitCode::from(1);
        }
    };

    // Front end.
    let ast = match parse(&src) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mplc: {e}");
            return ExitCode::from(1);
        }
    };
    let ty = match typecheck(&ast) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mplc: {e}");
            return ExitCode::from(1);
        }
    };
    println!("type: {ty}");
    if args.check_only {
        return ExitCode::SUCCESS;
    }

    // Formal-semantics backend (futures, schedule exploration).
    if args.interp {
        let mode = match args.mode {
            Mode::DetectOnly => LangMode::DetectOnly,
            _ => LangMode::Managed,
        };
        let opts = Options {
            schedule: args.schedule,
            mode,
            fuel: args.fuel,
        };
        match run_expr(&ast, opts) {
            Ok(out) => {
                println!("value: {}", out.render());
                if args.stats {
                    let c = out.costs;
                    println!("-- semantics costs --");
                    println!("steps (work)     : {}", c.steps);
                    println!("span             : {}", c.span);
                    println!("allocations      : {}", c.allocs);
                    println!("entangled reads  : {}", c.entangled_reads);
                    println!("entangled writes : {}", c.entangled_writes);
                    println!("pins / unpins    : {} / {}", c.pins, c.unpins);
                    println!("max pinned       : {}", c.max_pinned);
                    println!("max footprint    : {}", c.max_footprint);
                    println!("forks / futures  : {} / {}", c.forks, c.futures);
                    println!("touches          : {}", c.touches);
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("mplc: aborted: {e}");
                return ExitCode::from(1);
            }
        }
    }

    // Static disentanglement analysis (barrier elision).
    let mut mode = args.mode;
    if args.auto {
        match analyze(&ast) {
            Ok(v) => {
                println!("analysis: {v}");
                if v.is_disentangled() {
                    mode = Mode::NoEntanglementBarrier;
                }
            }
            Err(e) => {
                eprintln!("mplc: {e}");
                return ExitCode::from(1);
            }
        }
    }

    // Back end.
    let mut cfg = RuntimeConfig {
        mode,
        ..RuntimeConfig::managed()
    };
    if args.threads > 1 {
        cfg = cfg.with_threads(args.threads);
    }
    if !args.sim.is_empty() {
        cfg = cfg.with_dag();
    }
    let rt = Runtime::new(cfg);
    // DetectOnly semantics abort by panicking (prior MPL kills the
    // program); surface that as a clean diagnostic, without the default
    // hook's backtrace noise.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_source(&rt, &src, args.fuel)
    }));
    std::panic::set_hook(default_hook);
    match outcome {
        Ok(Ok(out)) => println!("value: {}", out.rendered),
        Ok(Err(e)) => {
            eprintln!("mplc: runtime error: {e}");
            return ExitCode::from(1);
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("task panicked");
            eprintln!("mplc: aborted: {msg}");
            return ExitCode::from(1);
        }
    }

    if args.stats {
        let s = rt.stats();
        println!("-- stats --");
        println!("allocations      : {} ({} bytes)", s.allocs, s.alloc_bytes);
        println!("barrier reads    : {}", s.barrier_reads);
        println!("entangled reads  : {}", s.entangled_reads);
        println!("entangled writes : {}", s.entangled_writes);
        println!("pins / unpins    : {} / {}", s.pins, s.unpins);
        println!("peak pinned      : {} bytes", s.max_pinned_bytes);
        println!("LGC runs         : {}", s.lgc_runs);
        println!("CGC runs         : {}", s.cgc_runs);
        if s.cgc_runs > 0 {
            println!(
                "CGC pauses       : total {} µs, max {} µs",
                s.cgc_pause_ns_total / 1000,
                s.cgc_pause_ns_max / 1000
            );
        }
        println!("peak residency   : {} bytes", s.max_live_bytes);
    }
    if args.report {
        println!("-- heap report --");
        print!("{}", rt.heap_report());
    }
    if args.dot {
        print!("{}", mpl_runtime::heap_dot(&rt.heap_report()));
    }

    if !args.sim.is_empty() {
        if let Some(dag) = rt.take_dag() {
            println!("-- simulated work-stealing schedule --");
            println!(
                "work {} / span {} / parallelism {:.1}",
                dag.total_work(),
                dag.span(),
                dag.parallelism()
            );
            let t1 = simulate(
                &dag,
                SimParams {
                    procs: 1,
                    steal_overhead: 8,
                    seed: 1,
                },
            )
            .time;
            for p in &args.sim {
                let tp = simulate(
                    &dag,
                    SimParams {
                        procs: *p,
                        steal_overhead: 8,
                        seed: 1,
                    },
                )
                .time;
                println!(
                    "P={p:<3} T_P={tp:<12} speedup {:.2}x",
                    t1 as f64 / tp.max(1) as f64
                );
            }
        }
    }
    ExitCode::SUCCESS
}
