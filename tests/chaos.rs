//! Chaos harness: the benchmark suites under seeded random fault
//! schedules, with phase audits on.
//!
//! Every test here asserts the same invariants the paper's soundness
//! argument promises under *any* schedule: checksums match the native
//! baseline, no trace ever reaches a dead object (`lgc_dead_traced`),
//! no audit fails, no pin leaks past the final join — and after an
//! *injected* fault (panic, allocation error), a fresh runtime behaves
//! identically to an uninjected run.
//!
//! The failpoint registry is process-global, so every test that arms a
//! plan serializes on [`CHAOS_LOCK`]; otherwise one test's delay plan
//! would fire inside another's runtime.

use std::sync::Mutex;
use std::time::Duration;

use mpl_runtime::{
    FailAction, FailPlan, FailWhen, GcPolicy, Runtime, RuntimeConfig, SchedMode, StoreConfig, Value,
};

mod common;
use common::quietly;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// The chaos baseline config: real threads, small heaps (lots of
/// collections), audits on.
fn chaos_config(threads: usize) -> RuntimeConfig {
    RuntimeConfig {
        policy: GcPolicy {
            lgc_trigger_bytes: 16 * 1024,
            cgc_trigger_pinned_bytes: 32 * 1024,
            immediate_block_free: false,
        },
        store: StoreConfig {
            block_words: 128,
            ..Default::default()
        },
        ..RuntimeConfig::managed()
    }
    .with_threads_exact(threads)
    .with_sched(SchedMode::WorkStealing)
    .with_audit()
}

/// A seeded schedule of *benign* faults (delays and yields — no panics):
/// the program must still compute the right answer, just on a perturbed
/// interleaving. Sites cover both collectors, the barrier slow tier, and
/// the scheduler.
fn benign_plan(seed: u64) -> FailPlan {
    FailPlan::new(seed)
        .with("lgc/shield", FailAction::Delay(50_000), FailWhen::OneIn(3))
        .with("lgc/evacuate", FailAction::Yield, FailWhen::OneIn(4))
        .with("lgc/retake", FailAction::Delay(20_000), FailWhen::OneIn(5))
        .with("cgc/mark", FailAction::Delay(30_000), FailWhen::OneIn(3))
        .with("cgc/sweep", FailAction::Yield, FailWhen::OneIn(4))
        .with(
            "barrier/read_slow",
            FailAction::Delay(5_000),
            FailWhen::OneIn(7),
        )
        .with("barrier/write_slow", FailAction::Yield, FailWhen::OneIn(7))
        .with("sched/steal", FailAction::Yield, FailWhen::OneIn(6))
        .with(
            "heap/block_map",
            FailAction::Delay(2_000),
            FailWhen::OneIn(9),
        )
}

#[test]
fn entangled_suite_under_seeded_delay_chaos() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    for seed in [1u64, 2, 3] {
        for name in ["dedup", "msqueue", "bfs", "accounts"] {
            let bench = mpl_bench_suite::by_name(name).unwrap();
            let n = bench.small_n() / 2;
            let rt = Runtime::new(chaos_config(4).with_failpoints(benign_plan(seed)));
            let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
            assert_eq!(got, Value::Int(bench.run_native(n)), "{name} seed {seed}");
            let s = rt.stats();
            assert_eq!(
                s.lgc_dead_traced, 0,
                "{name} seed {seed}: corruption canary"
            );
            assert_eq!(s.pinned_bytes, 0, "{name} seed {seed}: leaked pins");
            drop(rt);
        }
        let audit = mpl_gc::audit::counters();
        assert_eq!(audit.failures, 0, "seed {seed}: audit failures");
    }
}

#[test]
fn disentangled_suite_under_seeded_delay_chaos() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    for seed in [1u64, 2, 3] {
        for bench in mpl_bench_suite::all().iter().filter(|b| !b.entangled()) {
            let n = bench.small_n() / 2;
            let rt = Runtime::new(chaos_config(4).with_failpoints(benign_plan(seed)));
            let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
            assert_eq!(
                got,
                Value::Int(bench.run_native(n)),
                "{} seed {seed}",
                bench.name()
            );
            let s = rt.stats();
            assert_eq!(s.lgc_dead_traced, 0, "{} seed {seed}", bench.name());
            assert_eq!(s.pinned_bytes, 0, "{} seed {seed}", bench.name());
        }
        assert_eq!(mpl_gc::audit::counters().failures, 0, "seed {seed}");
    }
}

/// CGC pressure variant of the chaos baseline: a low pinned trigger and
/// (optionally) sliced cycles so the concurrent collector actually runs
/// packets during the suite.
fn cgc_chaos_config(threads: usize, slice: usize) -> RuntimeConfig {
    let mut cfg = chaos_config(threads);
    cfg.policy.cgc_trigger_pinned_bytes = 16 * 1024;
    cfg.with_cgc_slice(slice)
}

/// Packet-level faults: a panic injected inside one CGC trace/sweep work
/// packet mid-cycle (exercising packet crash-isolation, the repair pass,
/// and the dirty-cycle epilogue), plus delays in the packet and
/// modbuf-flush seams to stretch the windows between hand-offs. With
/// audits on, the suite must still produce native checksums, trace no
/// dead objects, and leak no pins.
#[test]
fn entangled_suite_under_cgc_packet_fault_chaos() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let (mut total_packets, mut total_retries) = (0u64, 0u64);
    for (seed, slice) in [(1u64, 0usize), (2, 256), (3, 0), (4, 256)] {
        for name in ["dedup", "msqueue", "bfs", "accounts"] {
            let plan = FailPlan::new(seed)
                .with("cgc/packet", FailAction::Panic, FailWhen::Nth(2))
                .with("cgc/packet", FailAction::Delay(20_000), FailWhen::OneIn(5))
                .with(
                    "cgc/modbuf-flush",
                    FailAction::Delay(10_000),
                    FailWhen::OneIn(3),
                )
                .with("cgc/mark", FailAction::Yield, FailWhen::OneIn(4))
                .with("cgc/sweep", FailAction::Delay(15_000), FailWhen::OneIn(4));
            let bench = mpl_bench_suite::by_name(name).unwrap();
            let n = bench.small_n() / 2;
            let rt = Runtime::new(cgc_chaos_config(4, slice).with_failpoints(plan));
            let got = quietly(|| rt.run(|m| Value::Int(bench.run_mpl(m, n))))
                .unwrap_or_else(|_| panic!("{name} seed {seed}: packet fault escaped the cycle"));
            assert_eq!(
                got,
                Value::Int(bench.run_native(n)),
                "{name} seed {seed} slice {slice}"
            );
            let s = rt.stats();
            assert_eq!(
                s.lgc_dead_traced, 0,
                "{name} seed {seed}: corruption canary"
            );
            assert_eq!(s.pinned_bytes, 0, "{name} seed {seed}: leaked pins");
            total_packets += s.cgc_packets;
            total_retries += s.cgc_packet_retries;
            drop(rt);
        }
        let audit = mpl_gc::audit::counters();
        assert_eq!(audit.failures, 0, "seed {seed}: audit failures");
    }
    // The low trigger guarantees the concurrent collector actually ran,
    // and with a Nth(2) panic armed per runtime at least one packet must
    // have crashed and been re-enqueued somewhere across the matrix.
    assert!(total_packets > 0, "CGC never packetized under pressure");
    assert!(
        total_retries > 0,
        "injected packet panics never exercised the retry path \
         ({total_packets} packets ran)"
    );
}

/// Watchdog false-positive regression: a sliced CGC cycle under load
/// spans many `cgc_step` calls, and before the per-packet/per-slice
/// re-arm the phase clock treated the whole span as one ever-aging
/// phase, producing stall dumps for healthy cycles. With benign delays
/// stretching the mark phase and a deadline much shorter than the full
/// cycle, the watchdog must stay quiet — every packet re-arms the clock.
#[test]
fn sliced_cgc_under_load_does_not_false_stall() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let before = mpl_gc::stall::reports();
    let plan = FailPlan::new(5)
        .with("cgc/mark", FailAction::Delay(3_000_000), FailWhen::OneIn(2))
        .with("cgc/packet", FailAction::Delay(500_000), FailWhen::OneIn(3));
    let bench = mpl_bench_suite::by_name("msqueue").unwrap();
    let n = bench.small_n() / 2;
    let rt = Runtime::new(
        cgc_chaos_config(2, 128)
            .with_failpoints(plan)
            .with_gc_watchdog(Duration::from_millis(50)),
    );
    let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
    assert_eq!(got, Value::Int(bench.run_native(n)));
    assert_eq!(rt.stats().lgc_dead_traced, 0);
    drop(rt);
    assert_eq!(
        mpl_gc::stall::reports(),
        before,
        "healthy sliced cycle must not trip the stall watchdog"
    );
}

#[test]
fn injected_panic_then_fresh_runtime_matches_uninjected_run() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let bench = mpl_bench_suite::by_name("dedup").unwrap();
    let n = bench.small_n() / 2;
    // Reference: an uninjected run.
    let expected = {
        let rt = Runtime::new(chaos_config(4));
        rt.run(|m| Value::Int(bench.run_mpl(m, n)))
    };
    for seed in [1u64, 2, 3] {
        // A panic injected at an LGC phase boundary mid-suite.
        let plan = FailPlan::new(seed).with("lgc/shield", FailAction::Panic, FailWhen::Nth(2));
        let rt = Runtime::new(chaos_config(4).with_failpoints(plan));
        let out = quietly(|| rt.run(|m| Value::Int(bench.run_mpl(m, n))));
        assert!(out.is_err(), "seed {seed}: the injected panic must escape");
        drop(rt);
        // A fresh runtime after the fault behaves identically to the
        // uninjected run.
        let rt2 = Runtime::new(chaos_config(4));
        let got = rt2.run(|m| Value::Int(bench.run_mpl(m, n)));
        assert_eq!(got, expected, "seed {seed}: post-fault run must match");
        let s = rt2.stats();
        assert_eq!(s.lgc_dead_traced, 0, "seed {seed}");
        assert_eq!(s.pinned_bytes, 0, "seed {seed}");
    }
    assert_eq!(mpl_gc::audit::counters().failures, 0);
}

#[test]
fn injected_alloc_error_surfaces_via_try_run() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let plan = FailPlan::new(7).with("alloc/words", FailAction::Error, FailWhen::Nth(3));
    let rt = Runtime::new(RuntimeConfig::managed().with_failpoints(plan));
    let out = rt.run(|m| m.alloc_ref(Value::Int(1))); // hit 1: fast path misses on a fresh cache
    assert!(matches!(out, Value::Obj(_)));
    let err = rt
        .try_run(|m| {
            // Enough slow-path entries (chunk refills) to reach the 3rd hit.
            let mut v = Value::Unit;
            for i in 0..100_000 {
                v = m.alloc_tuple(&[Value::Int(i), Value::Int(i)]);
            }
            v
        })
        .expect_err("the injected allocation error must surface");
    let err = err.alloc_error().expect("typed outcome is an alloc error");
    assert_eq!(err.limit, 0, "limit==0 flags an injected failure");
    assert!(rt.stats().alloc_failures >= 1);
    assert!(rt.stats().failpoint_fires >= 1);
    // A fresh runtime after the fault works normally.
    drop(rt);
    let rt2 = Runtime::new(RuntimeConfig::managed());
    let got = rt2.try_run(|m| {
        let cell = m.alloc_ref(Value::Int(9));
        m.read_ref(cell)
    });
    assert_eq!(got, Ok(Value::Int(9)));
}

#[test]
fn heap_limit_pressure_is_recoverable_and_fresh_runtime_passes_suite() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    // A budget far below what the program retains live: the escalation
    // ladder (flush → LGC → CGC) cannot save it, so the allocation fails
    // recoverably.
    let rt = Runtime::new(RuntimeConfig::managed().with_heap_limit(64 * 1024));
    let err = rt
        .try_run(|m| {
            // Retain everything: a growing list, rooted at each step.
            let mut list = m.alloc_tuple(&[Value::Unit]);
            let mut h = m.root(list);
            loop {
                list = m.alloc_tuple(&[Value::Int(1), m.get(&h)]);
                h = m.root(list);
            }
        })
        .expect_err("an unbounded retained allocation must exhaust the budget");
    let err = err.alloc_error().expect("typed outcome is an alloc error");
    assert_eq!(err.limit, 64 * 1024);
    assert!(err.live_bytes > 0, "the failure reports the live footprint");
    let s = rt.stats();
    assert!(
        s.gc_forced_by_pressure >= 2,
        "LGC then CGC were forced: {s:?}"
    );
    assert!(s.alloc_retries >= 2, "each forced collection was retried");
    assert_eq!(s.alloc_failures, 1);
    drop(rt);
    // Acceptance: a fresh runtime after the fault passes the full
    // disentangled suite.
    for bench in mpl_bench_suite::all().iter().filter(|b| !b.entangled()) {
        let n = bench.small_n() / 2;
        let rt = Runtime::new(RuntimeConfig::managed());
        let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
        assert_eq!(got, Value::Int(bench.run_native(n)), "{}", bench.name());
    }
}

#[test]
fn heap_limit_forces_collections_but_fitting_programs_succeed() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    // Allocate far more than the budget, but retain almost nothing: the
    // pressure path forces collections and the program completes.
    let rt = Runtime::new(RuntimeConfig::managed().with_heap_limit(256 * 1024));
    let v = rt
        .try_run(|m| {
            let mut last = Value::Unit;
            for i in 0..20_000 {
                last = m.alloc_tuple(&[Value::Int(i)]); // garbage immediately
            }
            last
        })
        .expect("a low-retention program fits any reasonable budget");
    assert!(matches!(v, Value::Obj(_)));
    let s = rt.stats();
    assert_eq!(s.alloc_failures, 0);
    assert!(
        s.alloc_bytes as usize > 256 * 1024,
        "the program allocated well past the budget: {s:?}"
    );
}

#[test]
fn watchdog_survives_an_injected_gc_phase_stall() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    // A 120 ms delay injected inside an LGC phase, with a 40 ms
    // watchdog deadline: the watchdog fires (stderr report; nothing to
    // assert on but absence of harm), the run still completes correctly.
    let plan = FailPlan::new(11).with(
        "lgc/evacuate",
        FailAction::Delay(120_000_000),
        FailWhen::Nth(1),
    );
    let bench = mpl_bench_suite::by_name("msort").unwrap();
    let n = bench.small_n() / 2;
    let rt = Runtime::new(
        chaos_config(2)
            .with_failpoints(plan)
            .with_gc_watchdog(Duration::from_millis(40)),
    );
    let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
    assert_eq!(got, Value::Int(bench.run_native(n)));
    assert_eq!(rt.stats().lgc_dead_traced, 0);
}

#[test]
fn serving_survives_admission_and_shed_chaos() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    // Seeded faults on the service layer's own sites: admission errors
    // shed requests before they reach the runtime, and yield storms fire
    // exactly while a request is being shed for budget reasons — the
    // moments a degraded server is most fragile. Soundness invariants
    // must hold regardless, and the benign tenant must keep serving.
    use mpl_serve::{Profile, Server, TenantSpec, TrafficConfig};
    for seed in [3u64, 17] {
        let plan = benign_plan(seed)
            .with("serve/admit", FailAction::Error, FailWhen::OneIn(9))
            .with("serve/shed", FailAction::Yield, FailWhen::OneIn(2));
        let rt = Runtime::new(chaos_config(3).with_failpoints(plan));
        let mut srv = Server::new(
            &rt,
            vec![
                TenantSpec::new("benign", 0),
                TenantSpec::new("hot", 192 * 1024)
                    .profile(Profile::Entangled)
                    .payload_scale(48)
                    .cache_slots(256),
            ],
        );
        let rep = srv.run(&TrafficConfig {
            seed,
            requests: 240,
            rate_hz: 100_000.0,
            tenants: 2,
            ..TrafficConfig::default()
        });
        assert!(
            rep.tenants[0].completed > 0,
            "seed {seed}: benign tenant starved"
        );
        assert!(
            rep.shed_total > 0,
            "seed {seed}: no sheds under admission chaos"
        );
        let s = rt.stats();
        assert_eq!(s.lgc_dead_traced, 0, "seed {seed}: corruption canary");
        assert_eq!(s.pinned_bytes, 0, "seed {seed}: leaked pins");
        assert_eq!(rt.parked_results(), 0, "seed {seed}: parked leak");
        srv.shutdown();
        assert_eq!(rt.live_root_stacks(), 0, "seed {seed}: root-stack leak");
        rt.assert_heap_sound();
    }
}
