//! Runtime-level fuzzing: random fork trees that allocate, publish,
//! acquire (entangle), mutate, and collect — interpreted side by side
//! with a pure oracle.
//!
//! The graph-level property tests in `crates/gc` exercise the collectors
//! on fixed object graphs; this suite drives the *whole mutator surface*
//! (barriers, pinning, rooting, fork/join, LGC triggers) through random
//! programs, so collector/barrier interactions that only arise from real
//! allocation and scheduling order get covered too.
//!
//! Under the sequential executor the fork order (left, then right) is
//! deterministic, so every read is checked against the oracle exactly.
//! Under real threads results may race; those runs check the structural
//! invariants only (no crash, pins resolve, heap certifies sound).

use proptest::prelude::*;
use std::sync::Mutex;

use mpl_runtime::{GcPolicy, Mutator, Runtime, RuntimeConfig, StoreConfig, Value};

/// Number of shared "mailbox" slots through which branches entangle.
const SHARED: usize = 4;

/// One step of a fuzz program. Indices are taken modulo the live
/// environment, so every generated program is valid by construction.
#[derive(Clone, Debug)]
enum Op {
    /// Allocate a fresh ref cell holding the constant.
    New(i64),
    /// Overwrite an existing cell (no-op on an empty environment).
    Set(usize, i64),
    /// Read a cell and check it against the oracle.
    Get(usize),
    /// Store cell `i` into shared mailbox `s` (a cross-heap write: this
    /// is what creates down-pointers and suspect marks).
    Publish(usize, usize),
    /// Load mailbox `s` and read through it (the entangling read: the
    /// cell may be owned by a concurrent sibling).
    Acquire(usize),
    /// Run both halves as parallel tasks.
    Fork(Vec<Op>, Vec<Op>),
    /// Force a local collection.
    Collect,
}

fn op_strategy(depth: u32) -> BoxedStrategy<Op> {
    let leaf = prop_oneof![
        3 => (-100i64..100).prop_map(Op::New),
        2 => (any::<usize>(), -100i64..100).prop_map(|(i, v)| Op::Set(i, v)),
        3 => any::<usize>().prop_map(Op::Get),
        2 => (any::<usize>(), 0..SHARED).prop_map(|(i, s)| Op::Publish(i, s)),
        2 => (0..SHARED).prop_map(Op::Acquire),
        1 => Just(Op::Collect),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = proptest::collection::vec(op_strategy(depth - 1), 0..6);
    prop_oneof![
        5 => leaf,
        2 => (sub.clone(), sub).prop_map(|(l, r)| Op::Fork(l, r)),
    ]
    .boxed()
}

fn program() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op_strategy(3), 1..12)
}

/// Pure oracle: cells are plain integers; mailboxes hold cell ids.
struct Model {
    cells: Vec<i64>,
    shared: [Option<usize>; SHARED],
}

/// Interprets `ops` in task `m`, mirroring every step in the oracle.
/// `env` pairs each rooted runtime cell with its oracle id.
fn interpret(
    m: &mut Mutator<'_>,
    ops: &[Op],
    env: &mut Vec<(mpl_runtime::Handle, usize)>,
    model: &Mutex<Model>,
    shared_arr: &mpl_runtime::Handle,
    check_values: bool,
) {
    for op in ops {
        match op {
            Op::New(v) => {
                let cell = m.alloc_ref(Value::Int(*v));
                let h = m.root(cell);
                let id = {
                    let mut mo = model.lock().unwrap();
                    mo.cells.push(*v);
                    mo.cells.len() - 1
                };
                env.push((h, id));
            }
            Op::Set(i, v) => {
                if env.is_empty() {
                    continue;
                }
                let (h, id) = &env[i % env.len()];
                let cell = m.get(h);
                m.write_ref(cell, Value::Int(*v));
                model.lock().unwrap().cells[*id] = *v;
            }
            Op::Get(i) => {
                if env.is_empty() {
                    continue;
                }
                let (h, id) = &env[i % env.len()];
                let cell = m.get(h);
                let got = m.read_ref(cell);
                if check_values {
                    assert_eq!(
                        got,
                        Value::Int(model.lock().unwrap().cells[*id]),
                        "Get({i}) disagreed with the oracle"
                    );
                }
            }
            Op::Publish(i, s) => {
                if env.is_empty() {
                    continue;
                }
                let (h, id) = &env[i % env.len()];
                let cell = m.get(h);
                let arr = m.get(shared_arr);
                m.arr_set(arr, *s, cell);
                model.lock().unwrap().shared[*s] = Some(*id);
            }
            Op::Acquire(s) => {
                let arr = m.get(shared_arr);
                let v = m.arr_get(arr, *s);
                if let Value::Obj(_) = v {
                    // The entangling read: the published cell may belong
                    // to a concurrent sibling's heap.
                    let got = m.read_ref(v);
                    if check_values {
                        let mo = model.lock().unwrap();
                        let id = mo.shared[*s].expect("oracle saw the publish");
                        assert_eq!(
                            got,
                            Value::Int(mo.cells[id]),
                            "Acquire({s}) disagreed with the oracle"
                        );
                    }
                    // Adopt the acquired cell into this task's working set
                    // so later Set/Get steps mutate remote state too.
                    if check_values {
                        let id = model.lock().unwrap().shared[*s].unwrap();
                        let h = m.root(v);
                        env.push((h, id));
                    }
                }
            }
            Op::Fork(l, r) => {
                // Children inherit the parent environment (handles are
                // readable from descendants) plus their own extensions.
                let le: Mutex<Vec<(mpl_runtime::Handle, usize)>> = Mutex::new(env.clone());
                let re: Mutex<Vec<(mpl_runtime::Handle, usize)>> = Mutex::new(env.clone());
                m.fork(
                    |m| {
                        let mut env = le.lock().unwrap();
                        interpret(m, l, &mut env, model, shared_arr, check_values);
                        Value::Unit
                    },
                    |m| {
                        let mut env = re.lock().unwrap();
                        interpret(m, r, &mut env, model, shared_arr, check_values);
                        Value::Unit
                    },
                );
            }
            Op::Collect => {
                m.force_lgc(&mut []);
            }
        }
    }
}

fn run_fuzz(ops: &[Op], cfg: RuntimeConfig, check_values: bool) {
    let rt = Runtime::new(cfg);
    let model = Mutex::new(Model {
        cells: Vec::new(),
        shared: [None; SHARED],
    });
    rt.run(|m| {
        let arr = m.alloc_array(SHARED, Value::Unit);
        let shared_arr = m.root(arr);
        let mut env = Vec::new();
        interpret(m, ops, &mut env, &model, &shared_arr, check_values);
        Value::Unit
    });
    assert_eq!(
        rt.stats().pinned_bytes,
        0,
        "all pins resolve at the root join"
    );
    rt.assert_heap_sound();
}

fn pressure() -> RuntimeConfig {
    RuntimeConfig {
        policy: GcPolicy {
            lgc_trigger_bytes: 2 * 1024,
            cgc_trigger_pinned_bytes: 4 * 1024,
            immediate_block_free: true,
        },
        store: StoreConfig {
            block_words: 32,
            ..Default::default()
        },
        ..RuntimeConfig::managed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequential executor: every read agrees with the pure oracle, under
    /// the default policy, aggressive collection pressure, and sliced
    /// (incremental) concurrent collection.
    #[test]
    fn random_programs_agree_with_oracle(ops in program()) {
        run_fuzz(&ops, RuntimeConfig::managed(), true);
        run_fuzz(&ops, pressure(), true);
        run_fuzz(&ops, pressure().with_cgc_slice(4), true);
    }

    /// The suspects fast path is semantics-preserving on random programs.
    #[test]
    fn random_programs_suspects_off(ops in program()) {
        let mut cfg = RuntimeConfig::managed();
        cfg.suspects = false;
        run_fuzz(&ops, cfg, true);
    }
}

proptest! {
    // Thread spawns per case make these slower; fewer cases suffice
    // because the interesting schedules come from the OS anyway.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Real threads: results may race, but the structure must stay sound
    /// (no panic, pins resolve, heap certifies).
    #[test]
    fn random_programs_threaded_sound(ops in program()) {
        run_fuzz(&ops, RuntimeConfig::managed().with_threads(3), false);
        run_fuzz(&ops, pressure().with_threads(3), false);
        run_fuzz(&ops, pressure().with_threads(3).with_cgc_slice(8), false);
    }
}
