//! Concurrency stress: repeated real-thread runs of the entangled suite,
//! hammering the pin/seal/join, SATB, and graveyard protocols. These
//! tests exist to make races like "pin registered concurrently with a
//! join lands on a merged-away index" (found and fixed during
//! development) stay fixed.

use mpl_runtime::{GcPolicy, Runtime, RuntimeConfig, StoreConfig, Value};

fn threaded_pressure(threads: usize) -> RuntimeConfig {
    RuntimeConfig {
        policy: GcPolicy {
            lgc_trigger_bytes: 16 * 1024,
            cgc_trigger_pinned_bytes: 32 * 1024,
            immediate_chunk_free: false,
        },
        store: StoreConfig { chunk_slots: 32 },
        ..RuntimeConfig::managed()
    }
    .with_threads(threads)
}

#[test]
fn entangled_suite_under_threads_and_gc_pressure() {
    for round in 0..5 {
        for name in ["dedup", "conc_stack", "accounts", "msqueue", "bfs", "memo"] {
            let bench = mpl_bench_suite::by_name(name).unwrap();
            let n = bench.small_n() / 2 + round; // vary sizes slightly
            let rt = Runtime::new(threaded_pressure(4));
            let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
            assert_eq!(
                got,
                Value::Int(bench.run_native(n)),
                "{name} round {round}"
            );
            let s = rt.stats();
            assert_eq!(s.pinned_bytes, 0, "{name} round {round}: leaked pins: {s:?}");
        }
    }
}

#[test]
fn entangled_suite_under_threads_with_sliced_cgc() {
    // Incremental cycles interleave with running mutators on real
    // threads: the SATB protocol (plus the LGC force-finish rule) must
    // keep every checksum and the pin accounting intact.
    for round in 0..3 {
        for name in ["dedup", "msqueue", "unionfind", "accounts"] {
            let bench = mpl_bench_suite::by_name(name).unwrap();
            let n = bench.small_n() / 2 + round;
            let rt = Runtime::new(threaded_pressure(4).with_cgc_slice(32));
            let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
            assert_eq!(
                got,
                Value::Int(bench.run_native(n)),
                "{name} round {round}"
            );
            let s = rt.stats();
            assert_eq!(s.pinned_bytes, 0, "{name} round {round}: leaked pins: {s:?}");
            rt.assert_heap_sound();
        }
    }
}

#[test]
fn racy_publish_read_loops_never_leak_pins() {
    // A tight cross-task publish/consume loop: the reader's pins race the
    // writer's collections and the final joins.
    for seed in 0..8 {
        let rt = Runtime::new(threaded_pressure(3));
        rt.run(|m| {
            let cell = m.alloc_ref(Value::Unit);
            let c = m.root(cell);
            m.fork(
                |m| {
                    for i in 0..400 {
                        let boxed = m.alloc_tuple(&[Value::Int(i + seed)]);
                        m.write_ref(m.get(&c), boxed);
                    }
                    Value::Unit
                },
                |m| {
                    let mut acc = 0i64;
                    for _ in 0..400 {
                        if let v @ Value::Obj(_) = m.read_ref(m.get(&c)) {
                            acc += m.tuple_get(v, 0).expect_int();
                        }
                    }
                    Value::Int(acc)
                },
            );
            Value::Unit
        });
        assert_eq!(rt.stats().pinned_bytes, 0, "seed {seed}");
        rt.force_cgc();
        assert_eq!(rt.stats().pinned_bytes, 0, "seed {seed} after CGC");
    }
}

#[test]
fn deep_fork_trees_with_cross_subtree_entanglement() {
    // Cousin-level entanglement under threads: pins must survive inner
    // joins and resolve at the LCA join, every time.
    fn go(m: &mut mpl_runtime::Mutator<'_>, cell: &mpl_runtime::Handle, depth: usize) -> i64 {
        if depth == 0 {
            // Publish and read.
            let boxed = m.alloc_tuple(&[Value::Int(depth as i64 + 1)]);
            m.write_ref(m.get(cell), boxed);
            match m.read_ref(m.get(cell)) {
                v @ Value::Obj(_) => m.tuple_get(v, 0).expect_int(),
                _ => 0,
            }
        } else {
            let (a, b) = m.fork(
                |m| Value::Int(go(m, cell, depth - 1)),
                |m| Value::Int(go(m, cell, depth - 1)),
            );
            a.expect_int() + b.expect_int()
        }
    }
    for _ in 0..10 {
        let rt = Runtime::new(threaded_pressure(4));
        rt.run(|m| {
            let cell = m.alloc_ref(Value::Unit);
            let c = m.root(cell);
            let total = go(m, &c, 5);
            assert!(total >= 1, "every leaf read something or its own write");
            Value::Unit
        });
        assert_eq!(rt.stats().pinned_bytes, 0);
    }
}

#[test]
fn compiled_calculus_under_threads() {
    // The compiled pipeline on the real-thread executor, including the
    // entangled examples.
    for _ in 0..5 {
        for (name, src) in mpl_lang::examples::ALL {
            let rt = Runtime::new(RuntimeConfig::managed().with_threads(3));
            let out = mpl_compile::run_source(&rt, src, 50_000_000)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            // Effectful programs may be racy in value; invariants are not.
            let _ = out;
            assert_eq!(rt.stats().pinned_bytes, 0, "{name}: pins resolve");
        }
    }
}
