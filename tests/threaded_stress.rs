//! Concurrency stress: repeated real-thread runs of the entangled suite,
//! hammering the pin/seal/join, SATB, and graveyard protocols. These
//! tests exist to make races like "pin registered concurrently with a
//! join lands on a merged-away index" (found and fixed during
//! development) stay fixed.

use mpl_runtime::{GcPolicy, Runtime, RuntimeConfig, SchedMode, StoreConfig, Value};

// `with_threads_exact`: these tests deliberately oversubscribe small
// hosts — concurrency bugs need concurrency, not host-sized pools.
fn threaded_pressure(threads: usize) -> RuntimeConfig {
    RuntimeConfig {
        policy: GcPolicy {
            lgc_trigger_bytes: 16 * 1024,
            cgc_trigger_pinned_bytes: 32 * 1024,
            immediate_block_free: false,
        },
        store: StoreConfig {
            block_words: 128,
            ..Default::default()
        },
        ..RuntimeConfig::managed()
    }
    .with_threads_exact(threads)
}

#[test]
fn entangled_suite_under_threads_and_gc_pressure() {
    for round in 0..5 {
        for name in ["dedup", "conc_stack", "accounts", "msqueue", "bfs", "memo"] {
            let bench = mpl_bench_suite::by_name(name).unwrap();
            let n = bench.small_n() / 2 + round; // vary sizes slightly
            let rt = Runtime::new(threaded_pressure(4));
            let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
            assert_eq!(got, Value::Int(bench.run_native(n)), "{name} round {round}");
            let s = rt.stats();
            assert_eq!(
                s.pinned_bytes, 0,
                "{name} round {round}: leaked pins: {s:?}"
            );
        }
    }
}

#[test]
fn entangled_suite_under_threads_with_sliced_cgc() {
    // Incremental cycles interleave with running mutators on real
    // threads: the SATB protocol (plus the LGC force-finish rule) must
    // keep every checksum and the pin accounting intact.
    for round in 0..3 {
        for name in ["dedup", "msqueue", "unionfind", "accounts"] {
            let bench = mpl_bench_suite::by_name(name).unwrap();
            let n = bench.small_n() / 2 + round;
            let rt = Runtime::new(threaded_pressure(4).with_cgc_slice(32));
            let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
            assert_eq!(got, Value::Int(bench.run_native(n)), "{name} round {round}");
            let s = rt.stats();
            assert_eq!(
                s.pinned_bytes, 0,
                "{name} round {round}: leaked pins: {s:?}"
            );
            rt.assert_heap_sound();
        }
    }
}

#[test]
fn racy_publish_read_loops_never_leak_pins() {
    // A tight cross-task publish/consume loop: the reader's pins race the
    // writer's collections and the final joins.
    for seed in 0..8 {
        let rt = Runtime::new(threaded_pressure(3));
        rt.run(|m| {
            let cell = m.alloc_ref(Value::Unit);
            let c = m.root(cell);
            m.fork(
                |m| {
                    for i in 0..400 {
                        let boxed = m.alloc_tuple(&[Value::Int(i + seed)]);
                        m.write_ref(m.get(&c), boxed);
                    }
                    Value::Unit
                },
                |m| {
                    let mut acc = 0i64;
                    for _ in 0..400 {
                        if let v @ Value::Obj(_) = m.read_ref(m.get(&c)) {
                            acc += m.tuple_get(v, 0).expect_int();
                        }
                    }
                    Value::Int(acc)
                },
            );
            Value::Unit
        });
        assert_eq!(rt.stats().pinned_bytes, 0, "seed {seed}");
        rt.force_cgc();
        assert_eq!(rt.stats().pinned_bytes, 0, "seed {seed} after CGC");
    }
}

#[test]
fn deep_fork_trees_with_cross_subtree_entanglement() {
    // Cousin-level entanglement under threads: pins must survive inner
    // joins and resolve at the LCA join, every time.
    fn go(m: &mut mpl_runtime::Mutator<'_>, cell: &mpl_runtime::Handle, depth: usize) -> i64 {
        if depth == 0 {
            // Publish and read.
            let boxed = m.alloc_tuple(&[Value::Int(depth as i64 + 1)]);
            m.write_ref(m.get(cell), boxed);
            match m.read_ref(m.get(cell)) {
                v @ Value::Obj(_) => m.tuple_get(v, 0).expect_int(),
                _ => 0,
            }
        } else {
            let (a, b) = m.fork(
                |m| Value::Int(go(m, cell, depth - 1)),
                |m| Value::Int(go(m, cell, depth - 1)),
            );
            a.expect_int() + b.expect_int()
        }
    }
    for _ in 0..10 {
        let rt = Runtime::new(threaded_pressure(4));
        rt.run(|m| {
            let cell = m.alloc_ref(Value::Unit);
            let c = m.root(cell);
            let total = go(m, &c, 5);
            assert!(total >= 1, "every leaf read something or its own write");
            Value::Unit
        });
        assert_eq!(rt.stats().pinned_bytes, 0);
    }
}

#[test]
fn entangled_suite_work_stealing_worker_sweep() {
    // The tentpole acceptance: the entangled suite under the persistent
    // work-stealing pool at 2, 4, and 8 workers with GC pressure, five
    // rounds at each width. Checksums must match the native baseline and
    // no pins may leak — whichever worker a branch landed on.
    for &workers in &[2usize, 4, 8] {
        let mut suite_pushes = 0u64;
        for round in 0..5 {
            for name in ["dedup", "msqueue", "bfs", "accounts"] {
                let bench = mpl_bench_suite::by_name(name).unwrap();
                let n = bench.small_n() / 2 + round;
                let rt =
                    Runtime::new(threaded_pressure(workers).with_sched(SchedMode::WorkStealing));
                let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
                assert_eq!(
                    got,
                    Value::Int(bench.run_native(n)),
                    "{name} round {round} at {workers} workers"
                );
                let s = rt.stats();
                assert_eq!(
                    s.pinned_bytes, 0,
                    "{name} round {round} at {workers} workers: leaked pins: {s:?}"
                );
                // Not every bench forks at every size (e.g. accounts below
                // its parallel grain runs sequentially), so deque traffic
                // is asserted for the suite as a whole, not per bench.
                suite_pushes += s.sched_pushes;
                assert_eq!(
                    s.sched_steals + s.sched_sequentialized,
                    s.sched_pushes,
                    "{name} at {workers} workers: every pushed branch resolves \
                     exactly once: {s:?}"
                );
            }
        }
        assert!(
            suite_pushes > 0,
            "at {workers} workers the suite's forks must go through the deques"
        );
    }
}

#[test]
fn scoped_threads_mode_still_agrees() {
    // The legacy thread-per-fork executor stays available behind
    // SchedMode::ScopedThreads and must produce identical results.
    // Sizes match the rest of the suite (small_n / 2); full small_n is
    // exercised by `lgc_dead_object_race_repro` below, the regression
    // test for the once-notorious LGC dead-object race.
    for name in ["dedup", "msqueue", "accounts"] {
        let bench = mpl_bench_suite::by_name(name).unwrap();
        let n = bench.small_n() / 2;
        let rt = Runtime::new(threaded_pressure(4).with_sched(SchedMode::ScopedThreads));
        let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
        assert_eq!(got, Value::Int(bench.run_native(n)), "{name}");
        let s = rt.stats();
        assert_eq!(s.pinned_bytes, 0, "{name}: leaked pins");
        assert_eq!(
            s.sched_pushes, 0,
            "{name}: scoped mode never touches deques"
        );
    }
}

#[test]
fn lgc_dead_object_race_repro() {
    // Regression test for the LGC dead-object race (formerly #[ignore]d:
    // dedup at full small_n under 4 scoped threads killed the referents
    // of objects pinned mid-collection in roughly 2 of 3 debug runs).
    // The fix is the registry re-take fixpoint before Phase C's kills
    // (lgc.rs); `lgc_dead_traced` is the always-on detector and must
    // stay zero.
    for round in 0..5 {
        let bench = mpl_bench_suite::by_name("dedup").unwrap();
        let n = bench.small_n();
        let rt = Runtime::new(threaded_pressure(4).with_sched(SchedMode::ScopedThreads));
        let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
        assert_eq!(got, Value::Int(bench.run_native(n)), "round {round}");
        let s = rt.stats();
        assert_eq!(
            s.lgc_dead_traced, 0,
            "round {round}: LGC traced a dead object: {s:?}"
        );
        assert_eq!(s.pinned_bytes, 0, "round {round}: leaked pins");
    }
}

#[test]
fn entangled_suite_with_phase_audits() {
    // The GC phase-audit layer (`RuntimeConfig::with_audit`) rides along
    // with the entangled suite under real threads: every LGC phase
    // boundary, CGC sweep, and graveyard reap re-validates the shield,
    // cross-checks reachability against dead marks, and scans for
    // dangling fields — panicking with the event trace on any violation.
    for name in ["dedup", "msqueue", "bfs", "accounts"] {
        let bench = mpl_bench_suite::by_name(name).unwrap();
        let n = bench.small_n() / 2;
        let rt = Runtime::new(threaded_pressure(4).with_audit());
        let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
        assert_eq!(got, Value::Int(bench.run_native(n)), "{name}");
        let s = rt.stats();
        assert_eq!(s.pinned_bytes, 0, "{name}: leaked pins: {s:?}");
        assert!(s.audit_runs > 0, "{name}: audits must actually run: {s:?}");
        assert_eq!(s.lgc_dead_traced, 0, "{name}: dead object traced: {s:?}");
    }
}

#[test]
fn entangled_suite_with_audits_at_env_worker_count() {
    // CI's `cgc-parallel` job runs this at 2, 4, and 8 workers
    // (`MPL_CGC_WORKERS`, matrix-driven); locally it defaults to 4.
    // Same invariants as the audit sweep above, plus proof that the
    // concurrent collector actually ran packets under pressure. The run
    // is telemetered and its Chrome trace written *before* the asserts,
    // so a CI failure uploads the exact packet interleaving that broke.
    let workers: usize = std::env::var("MPL_CGC_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut total_packets = 0u64;
    for name in ["dedup", "msqueue", "bfs", "accounts", "unionfind"] {
        let bench = mpl_bench_suite::by_name(name).unwrap();
        let n = bench.small_n() / 2;
        let rt = Runtime::new(threaded_pressure(workers).with_audit().with_telemetry());
        let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(|m| Value::Int(bench.run_mpl(m, n)))
        }));
        let trace = rt.telemetry_report().chrome_trace;
        std::fs::create_dir_all("results").ok();
        std::fs::write(format!("results/cgc_parallel_trace_{workers}.json"), trace).ok();
        let got = got.unwrap_or_else(|p| std::panic::resume_unwind(p));
        assert_eq!(got, Value::Int(bench.run_native(n)), "{name} @ {workers}w");
        let s = rt.stats();
        assert_eq!(s.pinned_bytes, 0, "{name} @ {workers}w: leaked pins");
        assert_eq!(s.lgc_dead_traced, 0, "{name} @ {workers}w: dead traced");
        assert!(s.audit_runs > 0, "{name} @ {workers}w: audits must run");
        total_packets += s.cgc_packets;
    }
    assert!(
        total_packets > 0,
        "CGC never packetized across the suite at {workers} workers"
    );
}

#[test]
fn buffered_remsets_flush_at_joins_under_audit() {
    // Down-pointer remembered-set entries are buffered task-privately
    // and published at safepoints (forks, joins, collections, task
    // drop). This drives deep fork trees whose children write
    // down-pointers into ancestor cells and then churn enough that the
    // *parent's* post-join collections depend on entries the children
    // buffered — all under 4 real threads with the full audit layer
    // (the `MPL_DEBUG_LGC_VALIDATE` checks) watching every phase
    // boundary.
    fn go(m: &mut mpl_runtime::Mutator<'_>, cell: &mpl_runtime::Handle, depth: usize) -> i64 {
        if depth == 0 {
            let mut acc = 0;
            for i in 0..40 {
                // Down-pointer: child-allocated tuple into the ancestor
                // cell (buffered remset entry), then churn to force
                // local collections that must see the entry.
                let boxed = m.alloc_tuple(&[Value::Int(i)]);
                m.write_ref(m.get(cell), boxed);
                for _ in 0..20 {
                    let _ = m.alloc_tuple(&[Value::Int(0), Value::Unit]);
                }
                if let v @ Value::Obj(_) = m.read_ref(m.get(cell)) {
                    acc += m.tuple_get(v, 0).expect_int();
                }
            }
            acc
        } else {
            let (a, b) = m.fork(
                |m| Value::Int(go(m, cell, depth - 1)),
                |m| Value::Int(go(m, cell, depth - 1)),
            );
            // Post-join churn in the parent: its collections now cover
            // the merged child data, whose remset entries must have been
            // flushed by the children's task-finish safepoints.
            for _ in 0..50 {
                let _ = m.alloc_tuple(&[Value::Int(1), Value::Unit]);
            }
            a.expect_int() + b.expect_int()
        }
    }
    for round in 0..10 {
        let cfg = RuntimeConfig {
            policy: GcPolicy {
                lgc_trigger_bytes: 2048,
                cgc_trigger_pinned_bytes: 16 * 1024,
                immediate_block_free: false,
            },
            store: StoreConfig {
                block_words: 64,
                ..Default::default()
            },
            ..RuntimeConfig::managed()
        }
        .with_threads_exact(4)
        .with_audit();
        let rt = Runtime::new(cfg);
        rt.run(|m| {
            let cell = m.alloc_ref(Value::Unit);
            let c = m.root(cell);
            let total = go(m, &c, 3);
            assert!(total > 0, "round {round}: leaves observed writes");
            Value::Unit
        });
        let s = rt.stats();
        assert_eq!(s.lgc_dead_traced, 0, "round {round}: dead traced: {s:?}");
        assert_eq!(s.pinned_bytes, 0, "round {round}: leaked pins: {s:?}");
        assert!(
            s.remset_flushes > 0,
            "round {round}: buffers flushed: {s:?}"
        );
        assert!(s.audit_runs > 0, "round {round}: audits ran: {s:?}");
        rt.assert_heap_sound();
    }
}

#[test]
fn work_stealing_runtime_is_reusable_across_runs() {
    // One pool, many runs: the driver slot must hand back cleanly and the
    // workers must stay healthy across program boundaries.
    let bench = mpl_bench_suite::by_name("dedup").unwrap();
    let rt = Runtime::new(threaded_pressure(4));
    for round in 0..5 {
        let n = bench.small_n() / 2 + round;
        let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
        assert_eq!(got, Value::Int(bench.run_native(n)), "round {round}");
    }
    assert_eq!(rt.stats().pinned_bytes, 0);
}

mod executor_agreement {
    //! Property: for random problem sizes, the work-stealing executor
    //! computes exactly what the sequential depth-first executor (and the
    //! native Rust oracle) compute — scheduling must be semantically
    //! invisible.

    use super::*;
    use proptest::prelude::*;

    fn ws(workers: usize) -> RuntimeConfig {
        threaded_pressure(workers).with_sched(SchedMode::WorkStealing)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn fib_matches_sequential_baseline(n in 4usize..18, workers in 2usize..=8) {
            let bench = mpl_bench_suite::by_name("fib").unwrap();
            let seq = Runtime::new(threaded_pressure(1));
            let expect = seq.run(|m| Value::Int(bench.run_mpl(m, n)));
            let rt = Runtime::new(ws(workers));
            let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
            prop_assert_eq!(got, expect);
            prop_assert_eq!(got, Value::Int(bench.run_native(n)));
            prop_assert_eq!(rt.stats().pinned_bytes, 0);
        }

        #[test]
        fn msort_matches_sequential_baseline(n in 1usize..220, workers in 2usize..=8) {
            let bench = mpl_bench_suite::by_name("msort").unwrap();
            let seq = Runtime::new(threaded_pressure(1));
            let expect = seq.run(|m| Value::Int(bench.run_mpl(m, n)));
            let rt = Runtime::new(ws(workers));
            let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
            prop_assert_eq!(got, expect);
            prop_assert_eq!(got, Value::Int(bench.run_native(n)));
            prop_assert_eq!(rt.stats().pinned_bytes, 0);
        }
    }
}

#[test]
fn compiled_calculus_under_threads() {
    // The compiled pipeline on the real-thread executor, including the
    // entangled examples.
    for _ in 0..5 {
        for (name, src) in mpl_lang::examples::ALL {
            let rt = Runtime::new(RuntimeConfig::managed().with_threads_exact(3));
            let out = mpl_compile::run_source(&rt, src, 50_000_000)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            // Effectful programs may be racy in value; invariants are not.
            let _ = out;
            assert_eq!(rt.stats().pinned_bytes, 0, "{name}: pins resolve");
        }
    }
}
