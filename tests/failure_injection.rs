//! Failure injection: tasks that panic mid-computation.
//!
//! The runtime's contract is *abort-on-panic propagation*: a panicking
//! task unwinds through `fork` (joining its sibling first under real
//! threads, so no thread is leaked) and out of `Runtime::run`. These
//! tests pin that contract down — and check that a panic does not poison
//! the process: a fresh runtime afterwards works normally, and under the
//! sequential executor even the *same* store stays structurally sound
//! enough to inspect.

use std::sync::atomic::{AtomicUsize, Ordering};

use mpl_runtime::{Runtime, RuntimeConfig, Value};

mod common;
use common::quietly;

#[test]
fn panic_in_left_branch_propagates() {
    let rt = Runtime::new(RuntimeConfig::managed());
    let out = quietly(|| {
        rt.run(|m| {
            m.fork(
                |_| panic!("injected failure (left)"),
                |m| m.alloc_ref(Value::Int(1)),
            );
            Value::Unit
        })
    });
    assert!(out.is_err(), "the injected panic must escape Runtime::run");
}

#[test]
fn panic_in_right_branch_propagates() {
    let rt = Runtime::new(RuntimeConfig::managed());
    let out = quietly(|| {
        rt.run(|m| {
            m.fork(
                |m| m.alloc_ref(Value::Int(1)),
                |_| panic!("injected failure (right)"),
            );
            Value::Unit
        })
    });
    assert!(out.is_err());
}

#[test]
fn panic_deep_in_a_fork_tree_propagates() {
    fn tree(m: &mut mpl_runtime::Mutator<'_>, depth: u32, poison: u32) -> Value {
        if depth == 0 {
            if poison == 0 {
                panic!("injected failure (leaf)");
            }
            return m.alloc_ref(Value::Int(i64::from(poison)));
        }
        let (l, _r) = m.fork(
            |m| tree(m, depth - 1, poison.wrapping_sub(1)),
            |m| tree(m, depth - 1, poison.wrapping_sub(2)),
        );
        l
    }
    let rt = Runtime::new(RuntimeConfig::managed());
    let out = quietly(|| rt.run(|m| tree(m, 4, 7)));
    assert!(out.is_err());
}

#[test]
fn panic_under_real_threads_joins_the_sibling_first() {
    // The panicking branch runs on the spawning thread; the sibling runs
    // on a scoped thread. The scope guarantees the sibling completes (or
    // unwinds) before the panic escapes — this test asserts the sibling's
    // side effect is visible even though the program as a whole dies.
    static SIBLING_RAN: AtomicUsize = AtomicUsize::new(0);
    SIBLING_RAN.store(0, Ordering::SeqCst);
    let rt = Runtime::new(RuntimeConfig::managed().with_threads(2));
    let out = quietly(|| {
        rt.run(|m| {
            m.fork(
                |m| {
                    // Real work so the sibling is still running when the
                    // right branch panics.
                    let mut v = Value::Int(0);
                    for i in 0..1000 {
                        v = m.alloc_ref(Value::Int(i));
                    }
                    SIBLING_RAN.store(1, Ordering::SeqCst);
                    v
                },
                |_| panic!("injected failure (threaded)"),
            );
            Value::Unit
        })
    });
    assert!(out.is_err());
    assert_eq!(
        SIBLING_RAN.load(Ordering::SeqCst),
        1,
        "scoped spawn must join the sibling before unwinding"
    );
}

#[test]
fn fresh_runtime_after_a_panic_works_normally() {
    let rt = Runtime::new(RuntimeConfig::managed());
    let _ = quietly(|| {
        rt.run(|m| {
            m.fork(|_| panic!("injected"), |m| m.alloc_ref(Value::Int(1)));
            Value::Unit
        })
    });
    // The process is not poisoned: a new runtime computes correctly.
    let rt2 = Runtime::new(RuntimeConfig::managed());
    let v = rt2.run(|m| {
        let (a, b) = m.fork(|_| Value::Int(20), |_| Value::Int(22));
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => Value::Int(x + y),
            _ => unreachable!(),
        }
    });
    assert_eq!(v, Value::Int(42));
    assert_eq!(rt2.stats().pinned_bytes, 0);
    rt2.assert_heap_sound();
}

#[test]
fn sequential_store_remains_inspectable_after_a_panic() {
    // After an unwound run, inspection and statistics must not crash,
    // and accounting must stay consistent (no negative counters,
    // live <= allocated). Unwinding joins merge the panicking task's
    // heaps into the root heap and the end-of-run reclaim collects it,
    // so nothing the run allocated outlives it.
    let rt = Runtime::new(RuntimeConfig::managed());
    let _ = quietly(|| {
        rt.run(|m| {
            let shared = m.alloc_array(2, Value::Unit);
            let hs = m.root(shared);
            m.fork(
                |m| {
                    let cell = m.alloc_ref(Value::Int(9));
                    let arr = m.get(&hs);
                    m.arr_set(arr, 0, cell);
                    Value::Unit
                },
                |m| {
                    let arr = m.get(&hs);
                    let v = m.arr_get(arr, 0);
                    let _ = m.read_ref(v); // pins (entangled)
                    panic!("injected after pinning");
                },
            );
            Value::Unit
        })
    });
    let stats = rt.stats();
    assert!(stats.live_bytes <= stats.alloc_bytes as usize);
    let report = rt.heap_report();
    assert_eq!(
        report.blocks_live, 0,
        "the unwound run's heap was fully reclaimed"
    );
    assert_eq!(stats.pinned_bytes, 0, "unwinding released the pin");
    // The entangled read did pin before the panic (cumulative counter).
    assert!(stats.pins >= 1);
}

#[test]
fn pool_survives_a_task_panic_and_accepts_new_runs() {
    // Regression: a panic unwinding through the persistent work-stealing
    // pool must not leave any worker permanently parked or wedge the
    // driver slot. The *same* runtime (same pool) must accept further
    // `run` calls and still execute forks in parallel.
    let rt = Runtime::new(RuntimeConfig::managed().with_threads(4));
    for round in 0..3 {
        let out = quietly(|| {
            rt.run(|m| {
                m.fork(
                    |m| {
                        let mut v = Value::Int(0);
                        for i in 0..500 {
                            v = m.alloc_ref(Value::Int(i));
                        }
                        v
                    },
                    |_| panic!("injected (pool round)"),
                );
                Value::Unit
            })
        });
        assert!(out.is_err(), "round {round}: the panic must escape");
        // The pool is immediately reusable: a real fork tree completes
        // and produces the right answer.
        let v = rt.run(|m| {
            fn sum(m: &mut mpl_runtime::Mutator<'_>, depth: u32) -> i64 {
                if depth == 0 {
                    return 1;
                }
                let (a, b) = m.fork(
                    |m| Value::Int(sum(m, depth - 1)),
                    |m| Value::Int(sum(m, depth - 1)),
                );
                match (a, b) {
                    (Value::Int(x), Value::Int(y)) => x + y,
                    _ => unreachable!(),
                }
            }
            Value::Int(sum(m, 5))
        });
        assert_eq!(v, Value::Int(32), "round {round}: pool must still compute");
    }
    // And a *fresh* runtime (new pool) also works.
    let rt2 = Runtime::new(RuntimeConfig::managed().with_threads(4));
    let v = rt2.run(|m| {
        let (a, b) = m.fork(|_| Value::Int(20), |_| Value::Int(22));
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => Value::Int(x + y),
            _ => unreachable!(),
        }
    });
    assert_eq!(v, Value::Int(42));
}
