//! Cooperative cancellation & deadlines: bounded-latency fork/join
//! unwinding must leave the heap exactly as sound as a normal join.
//!
//! The claims under test:
//!
//! 1. **Deadlines cancel** — a spinning fork tree under
//!    `try_run_deadline` unwinds with `CancelReason::Deadline`, promptly,
//!    and the runtime stays fully usable afterwards.
//! 2. **Explicit cancel** — tripping the runtime's root token from
//!    another thread unwinds an in-flight run and (by design) poisons
//!    future runs: the root token is the shutdown switch.
//! 3. **Watchdog escalation (opt-in)** — with `with_watchdog_cancels()`,
//!    a GC stall report trips the root token and the stalled run is
//!    cancelled instead of hanging; the per-`Runtime` report counter
//!    counts only its own runtime's stalls.
//! 4. **Soundness under storms** — hundreds of randomly-deadlined runs,
//!    and cancellations landing while a collector phase is stretched by
//!    injected delays, must leak no pins, park no results, trace no dead
//!    objects, and fail no audits.
//! 5. **Fresh-runtime equivalence** (property) — after a cancelled tree
//!    and a quiescing GC, the runtime is indistinguishable from one that
//!    never ran it.
//!
//! The failpoint registry and audit counters are process-global, so
//! tests that arm plans serialize on [`CANCEL_LOCK`].

use std::sync::Mutex;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use mpl_runtime::{
    CancelReason, FailAction, FailPlan, FailWhen, GcPolicy, Mutator, RunError, Runtime,
    RuntimeConfig, SchedMode, StoreConfig, Value,
};

static CANCEL_LOCK: Mutex<()> = Mutex::new(());

/// Small heaps (lots of collections), real threads, audits on: the same
/// shape as the chaos baseline so cancellations land mid-GC often.
fn cancel_config(threads: usize) -> RuntimeConfig {
    RuntimeConfig {
        policy: GcPolicy {
            lgc_trigger_bytes: 16 * 1024,
            cgc_trigger_pinned_bytes: 32 * 1024,
            immediate_block_free: false,
        },
        store: StoreConfig {
            block_words: 128,
            ..Default::default()
        },
        ..RuntimeConfig::managed()
    }
    .with_threads_exact(threads)
    .with_sched(SchedMode::WorkStealing)
    .with_audit()
}

/// Allocates fresh garbage forever; only cancellation ends it. Every
/// allocation is a poll point, so the unwind begins within one tuple of
/// the trip.
fn spin_leaf(m: &mut Mutator<'_>) -> Value {
    let mut i = 0i64;
    loop {
        let _ = m.alloc_tuple(&[Value::Int(i), Value::Int(i)]);
        i += 1;
    }
}

/// A binary fork tree of the given depth whose leaves spin forever: the
/// whole tree can only end by unwinding through every join.
fn spin_tree(m: &mut Mutator<'_>, depth: usize) -> Value {
    if depth == 0 {
        spin_leaf(m)
    } else {
        let (a, _) = m.fork(
            move |m| spin_tree(m, depth - 1),
            move |m| spin_tree(m, depth - 1),
        );
        a
    }
}

/// An entangled spin: one branch publishes fresh tuples into a shared
/// ref, the sibling reads them (pinning at the LCA), both forever —
/// maximal pin/remset/CGC traffic for a cancellation to land in.
fn entangled_spin(m: &mut Mutator<'_>) -> Value {
    let cell = m.alloc_ref(Value::Unit);
    let c = m.root(cell);
    let (a, _) = m.fork(
        |m| {
            let mut i = 0i64;
            loop {
                let t = m.alloc_tuple(&[Value::Int(i), Value::Int(i)]);
                m.write_ref(m.get(&c), t);
                i += 1;
            }
        },
        |m| {
            let mut acc = 0i64;
            loop {
                let v = m.read_ref(m.get(&c));
                if let Value::Obj(_) = v {
                    acc += m.tuple_get(v, 0).expect_int();
                }
                let _ = m.alloc_tuple(&[Value::Int(acc)]);
            }
        },
    );
    a
}

/// Asserts the post-cancellation soundness invariants shared by every
/// test here: nothing leaked, nothing parked, nothing corrupted.
fn assert_clean(rt: &Runtime, tag: &str) {
    let s = rt.stats();
    assert_eq!(s.lgc_dead_traced, 0, "{tag}: corruption canary");
    assert_eq!(s.pinned_bytes, 0, "{tag}: leaked pins");
    assert_eq!(rt.parked_results(), 0, "{tag}: parked sibling results");
    assert_eq!(rt.live_root_stacks(), 0, "{tag}: leaked root stacks");
    rt.assert_heap_sound();
}

#[test]
fn deadline_cancels_a_spinning_tree_promptly() {
    let _guard = CANCEL_LOCK.lock().unwrap();
    let rt = Runtime::new(cancel_config(4));
    let t0 = Instant::now();
    let err = rt
        .try_run_deadline(Duration::from_millis(5), |m| spin_tree(m, 3))
        .expect_err("a spinning tree can only end by cancellation");
    let unwound = t0.elapsed();
    assert!(err.is_cancelled(), "wrong outcome: {err}");
    match err {
        RunError::Cancelled(c) => {
            assert!(matches!(c.reason, CancelReason::Deadline), "reason: {c:?}")
        }
        other => panic!("expected Cancelled, got {other}"),
    }
    // Bounded latency: generous (debug builds, loaded CI), but it must
    // not take the scenic route either.
    assert!(
        unwound < Duration::from_secs(2),
        "cancellation took {unwound:?}"
    );
    let s = rt.stats();
    assert!(s.cancel_requested >= 1, "no task observed the trip: {s:?}");
    assert_eq!(s.cancel_unwound, 1, "exactly one run unwound: {s:?}");
    assert_clean(&rt, "deadline");
    // The runtime is fully usable afterwards: the per-run child token
    // expired, not the root.
    assert_eq!(rt.try_run(|_| Value::Int(7)).unwrap(), Value::Int(7));
    let bench = mpl_bench_suite::by_name("msort").unwrap();
    let n = bench.small_n() / 2;
    let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
    assert_eq!(got, Value::Int(bench.run_native(n)));
}

#[test]
fn explicit_root_cancel_unwinds_and_poisons_future_runs() {
    let _guard = CANCEL_LOCK.lock().unwrap();
    let rt = Runtime::new(cancel_config(2));
    let token = rt.root_cancel().clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(3));
        token.cancel();
    });
    let err = rt
        .try_run(entangled_spin)
        .expect_err("the external cancel must unwind the run");
    canceller.join().unwrap();
    match err {
        RunError::Cancelled(c) => {
            assert!(matches!(c.reason, CancelReason::Explicit), "reason: {c:?}")
        }
        other => panic!("expected Cancelled, got {other}"),
    }
    assert_clean(&rt, "explicit");
    // The root token is the shutdown switch: once tripped, every future
    // run is cancelled at its first poll point.
    let err2 = rt
        .try_run(|m| {
            let _ = m.alloc_tuple(&[Value::Int(1)]);
            Value::Unit
        })
        .expect_err("a cancelled root must refuse new work");
    assert!(err2.is_cancelled(), "wrong outcome: {err2}");
}

#[test]
fn watchdog_fire_cancels_the_stalled_run_when_opted_in() {
    let _guard = CANCEL_LOCK.lock().unwrap();
    // A 100 ms stall injected inside an LGC phase with a 25 ms watchdog
    // deadline: the watchdog reports, and — because this runtime opted
    // in — trips the root token, so the spinning run is cancelled
    // instead of running forever.
    let plan = FailPlan::new(13).with(
        "lgc/evacuate",
        FailAction::Delay(100_000_000),
        FailWhen::Nth(1),
    );
    let rt = Runtime::new(
        cancel_config(2)
            .with_failpoints(plan)
            .with_gc_watchdog(Duration::from_millis(25))
            .with_watchdog_cancels(),
    );
    let err = rt
        .try_run(spin_leaf)
        .expect_err("the watchdog escalation must cancel the run");
    match err {
        RunError::Cancelled(c) => {
            assert!(matches!(c.reason, CancelReason::Watchdog), "reason: {c:?}")
        }
        other => panic!("expected Cancelled, got {other}"),
    }
    assert!(
        rt.watchdog_reports() >= 1,
        "the escalation implies at least one report"
    );
    assert_clean(&rt, "watchdog");
    drop(rt);
    // Per-runtime isolation (regression): a fresh runtime's report
    // counter starts at zero even though the process-global tally has
    // advanced, and stays zero across a healthy run.
    assert!(mpl_gc::stall::reports() >= 1, "global tally advanced");
    let rt2 = Runtime::new(cancel_config(2).with_gc_watchdog(Duration::from_millis(500)));
    assert_eq!(
        rt2.watchdog_reports(),
        0,
        "fresh runtime inherits no reports"
    );
    let bench = mpl_bench_suite::by_name("fib").unwrap();
    let n = bench.small_n() / 2;
    let got = rt2.run(|m| Value::Int(bench.run_mpl(m, n)));
    assert_eq!(got, Value::Int(bench.run_native(n)));
    assert_eq!(rt2.watchdog_reports(), 0, "healthy run must not report");
}

/// The cancel storm: hundreds of runs with randomized tiny deadlines and
/// varying tree depth, interleaved with runs that complete normally.
/// After the storm, nothing is leaked and the audits are clean.
#[test]
fn cancel_storm_leaks_nothing() {
    let _guard = CANCEL_LOCK.lock().unwrap();
    let rt = Runtime::new(cancel_config(4));
    let mut rng = mpl_serve::SplitMix64::new(0xE16);
    let (mut cancelled, mut completed) = (0u64, 0u64);
    for i in 0..1000u64 {
        if i % 5 == 4 {
            // A run that finishes on its own, well inside its deadline:
            // success and cancellation must interleave freely.
            let v = rt
                .try_run_deadline(Duration::from_secs(5), |m| {
                    let (a, b) = m.fork(
                        |m| {
                            let t = m.alloc_tuple(&[Value::Int(20), Value::Int(1)]);
                            m.tuple_get(t, 0)
                        },
                        |_| Value::Int(22),
                    );
                    Value::Int(a.expect_int() + b.expect_int())
                })
                .expect("a fast run must beat a 5s deadline");
            assert_eq!(v, Value::Int(42));
            completed += 1;
            continue;
        }
        let depth = (rng.next_u64() % 4) as usize;
        let deadline = Duration::from_micros(20 + rng.next_u64() % 600);
        let err = rt
            .try_run_deadline(deadline, move |m| spin_tree(m, depth))
            .expect_err("spinning trees only end by cancellation");
        assert!(err.is_cancelled(), "run {i}: {err}");
        cancelled += 1;
    }
    assert_eq!(cancelled, 800);
    assert_eq!(completed, 200);
    let s = rt.stats();
    assert_eq!(s.cancel_unwound, cancelled, "one unwind per cancelled run");
    assert!(s.cancel_requested >= cancelled, "every trip was observed");
    assert_clean(&rt, "storm");
    assert_eq!(
        mpl_gc::audit::counters().failures,
        0,
        "storm audit failures"
    );
}

/// Cancellations landing while a collector phase is stretched by an
/// injected delay — LGC shield, LGC evacuate, CGC mark — plus a jittered
/// delay on the unwind path itself. The deadline (4 ms) expires *inside*
/// the stretched phase, so the unwind begins at the first poll point
/// after the collector hands back control, with the heap mid-cycle.
#[test]
fn cancellation_during_stretched_gc_phases_is_sound() {
    let _guard = CANCEL_LOCK.lock().unwrap();
    for (seed, site) in [
        (21u64, "lgc/shield"),
        (22, "lgc/evacuate"),
        (23, "cgc/mark"),
    ] {
        let plan = FailPlan::new(seed)
            .with(site, FailAction::Delay(10_000_000), FailWhen::OneIn(2))
            .with(
                "cancel/unwind",
                FailAction::Delay(1_000_000),
                FailWhen::OneIn(2),
            );
        let rt = Runtime::new(cancel_config(4).with_failpoints(plan));
        let err = rt
            .try_run_deadline(Duration::from_millis(4), entangled_spin)
            .expect_err("the deadline must cancel the entangled spin");
        assert!(err.is_cancelled(), "{site}: {err}");
        assert_clean(&rt, site);
        drop(rt);
        assert_eq!(
            mpl_gc::audit::counters().failures,
            0,
            "{site}: audit failures"
        );
    }
}

/// Cancels arriving at arbitrary moments of a fork-heavy run — including
/// exactly at joins: rapid small forks mean most wall-clock time is
/// join/merge, so jittered external trips land there routinely.
#[test]
fn external_cancels_land_at_joins_soundly() {
    let _guard = CANCEL_LOCK.lock().unwrap();
    for round in 0..12u64 {
        let rt = Runtime::new(cancel_config(4));
        let token = rt.root_cancel().clone();
        let jitter = Duration::from_micros(200 + round * 377);
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(jitter);
            token.cancel();
        });
        // Rapid shallow forks: join churn dominates.
        let out = rt.try_run(|m| {
            let mut acc = 0i64;
            loop {
                let (a, b) = m.fork(
                    |m| {
                        let t = m.alloc_tuple(&[Value::Int(1), Value::Int(2)]);
                        m.tuple_get(t, 0)
                    },
                    |m| {
                        let t = m.alloc_tuple(&[Value::Int(3), Value::Int(4)]);
                        m.tuple_get(t, 1)
                    },
                );
                acc += a.expect_int() + b.expect_int();
                let _ = m.alloc_tuple(&[Value::Int(acc)]);
            }
        });
        canceller.join().unwrap();
        let err = out.expect_err("the loop only ends by cancellation");
        assert!(err.is_cancelled(), "round {round}: {err}");
        assert_clean(&rt, "join-cancel");
        drop(rt);
    }
    assert_eq!(mpl_gc::audit::counters().failures, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fresh-runtime equivalence: a cancelled tree, once quiesced, leaves
    /// the runtime byte-for-byte indistinguishable (live bytes, pins,
    /// parked results, root stacks, and a benchmark checksum) from a
    /// control runtime that never ran it.
    #[test]
    fn cancelled_tree_leaves_runtime_as_if_never_run(
        depth in 0usize..3,
        deadline_us in 50u64..1500,
        entangled in any::<bool>(),
    ) {
        let _guard = CANCEL_LOCK.lock().unwrap();
        let rt = Runtime::new(cancel_config(2));
        let err = rt
            .try_run_deadline(Duration::from_micros(deadline_us), move |m| {
                if entangled {
                    entangled_spin(m)
                } else {
                    spin_tree(m, depth)
                }
            })
            .expect_err("spin workloads only end by cancellation");
        prop_assert!(err.is_cancelled(), "{}", err);
        let control = Runtime::new(cancel_config(2));
        // Identical quiesce sequence on both, then compare. Two rounds:
        // the SATB collector allocates black, so entangled objects whose
        // pins died mid-cycle are floating garbage until the next cycle.
        for r in [&rt, &control] {
            for _ in 0..2 {
                r.run(|m| {
                    m.force_lgc(&mut []);
                    Value::Unit
                });
                r.force_cgc();
            }
        }
        let (a, b) = (rt.stats(), control.stats());
        prop_assert_eq!(a.live_bytes, b.live_bytes, "retained footprint differs");
        prop_assert_eq!(a.pinned_bytes, 0);
        prop_assert_eq!(rt.parked_results(), control.parked_results());
        prop_assert_eq!(rt.live_root_stacks(), control.live_root_stacks());
        prop_assert_eq!(a.lgc_dead_traced, 0);
        rt.assert_heap_sound();
        let bench = mpl_bench_suite::by_name("primes").unwrap();
        let n = bench.small_n() / 2;
        let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
        let want = control.run(|m| Value::Int(bench.run_mpl(m, n)));
        prop_assert_eq!(got, want, "post-cancel behavior diverged");
    }
}
