//! Helpers shared by the failure-injection and chaos integration tests.

#![allow(dead_code)] // each test binary uses a subset

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f` with panic output silenced (these panics are the point).
/// Serialized: the panic hook is process-global, and the test harness
/// runs tests in parallel.
pub fn quietly<T>(f: impl FnOnce() -> T) -> std::thread::Result<T> {
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = HOOK_LOCK.lock().unwrap();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = catch_unwind(AssertUnwindSafe(f));
    std::panic::set_hook(hook);
    out
}
