//! Heap-census fidelity and flight-recorder post-mortem tests.
//!
//! Three claims the observability layer makes:
//!
//! 1. **Fidelity** — `Runtime::heap_census()` is computed from per-block
//!    side metadata, while the live-bytes gauge is maintained by
//!    allocation/reclaim deltas. After a forced LGC + CGC quiesces the
//!    heap, the two independent accountings must agree *exactly*, on any
//!    object graph — checked property-style over random shapes (retained
//!    lists, churned garbage, entangled cross-heap reads, nested forks).
//! 2. **Attribution** — per-class and per-tenant census rows partition
//!    the whole-heap totals; a budgeted tenant session's blocks show up
//!    under its name, keyed off `TenantBudget` heap ownership.
//! 3. **Post-mortem** — the two automatic dump triggers (a GC-watchdog
//!    stall and a heap-limit `AllocError`) each leave a decodable flight
//!    recording on disk containing the anomaly event that tripped them.
//!
//! The flight ring, dump counter, and `MPL_FLIGHT_DIR` are process-global,
//! so everything here serializes on [`CENSUS_LOCK`].

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use proptest::prelude::*;

use mpl_runtime::{
    FailAction, FailPlan, FailWhen, GcPolicy, Runtime, RuntimeConfig, StoreConfig, Value,
};

static CENSUS_LOCK: Mutex<()> = Mutex::new(());

/// Small blocks and low triggers so collections actually happen at the
/// scales proptest drives.
fn census_config(threads: usize) -> RuntimeConfig {
    RuntimeConfig {
        policy: GcPolicy {
            lgc_trigger_bytes: 16 * 1024,
            cgc_trigger_pinned_bytes: 32 * 1024,
            immediate_block_free: false,
        },
        store: StoreConfig {
            block_words: 128,
            ..Default::default()
        },
        ..RuntimeConfig::managed()
    }
    .with_threads_exact(threads)
}

/// Waits for an automatic flight dump whose filename contains `reason`
/// to appear in `dir` (the watchdog dumps from its own thread).
fn wait_for_dump(dir: &std::path::Path, reason: &str) -> PathBuf {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for e in entries.flatten() {
                let name = e.file_name().to_string_lossy().into_owned();
                if name.contains(reason) && name.ends_with(".bin") {
                    return e.path();
                }
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no '{reason}' flight dump appeared in {}",
            dir.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A fresh per-test dump directory, exported via `MPL_FLIGHT_DIR`.
fn fresh_dump_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpl-census-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("MPL_FLIGHT_DIR", &dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fidelity on random graphs: side-metadata census == gauge after
    /// forced LGC + CGC, and the class/tenant rows partition the totals.
    #[test]
    fn census_live_bytes_matches_gauge_after_forced_gcs(
        retain in 1usize..400,
        junk in 0usize..400,
        wide in 0usize..24,
        reads in 1usize..32,
        nest in 0usize..2,
    ) {
        let _guard = CENSUS_LOCK.lock().unwrap();
        let rt = Runtime::new(census_config(2));
        rt.run(|m| {
            // Retained cons list (class 0) plus some wider tuples so
            // multiple size classes participate.
            let mut list = Value::Unit;
            for i in 0..retain as i64 {
                list = m.alloc_tuple(&[Value::Int(i), list]);
            }
            let _keep = m.root(list);
            let fat = [Value::Int(7); 14];
            for _ in 0..wide {
                let t = m.alloc_tuple(&fat);
                let _h = m.root(t);
            }
            // Immediately-dead churn the collectors must reclaim.
            for i in 0..junk as i64 {
                let _ = m.alloc_tuple(&[Value::Int(i)]);
            }
            // Entangled edge(s): a sibling reads tuples the other branch
            // published, pinning them at the LCA; optionally one level
            // deeper so owner/reader depths differ by more than one.
            let cell = m.alloc_ref(Value::Unit);
            let c = m.root(cell);
            let _ = m.fork(
                |m| {
                    let publish = |m: &mut mpl_runtime::Mutator<'_>| {
                        let t = m.alloc_tuple(&[Value::Int(40), Value::Int(2)]);
                        m.write_ref(m.get(&c), t);
                        Value::Unit
                    };
                    if nest == 1 {
                        let (a, _) = m.fork(publish, |_| Value::Unit);
                        a
                    } else {
                        publish(m)
                    }
                },
                |m| {
                    let mut seen = 0i64;
                    let mut done = 0usize;
                    while done < reads {
                        let v = m.read_ref(m.get(&c));
                        if let Value::Obj(_) = v {
                            seen += m.tuple_get(v, 0).expect_int();
                            done += 1;
                        }
                    }
                    Value::Int(seen)
                },
            );
            m.force_lgc(&mut []);
            Value::Unit
        });
        rt.force_cgc();
        let census = rt.heap_census();
        let gauge = rt.stats().live_bytes as u64;
        prop_assert_eq!(
            census.live_bytes, gauge,
            "census side-metadata total vs live-bytes gauge"
        );
        let class_sum: u64 = census.classes.iter().map(|c| c.live_bytes).sum();
        prop_assert_eq!(class_sum, census.live_bytes, "classes partition the heap");
        let attributed: u64 = census.tenants.iter().map(|t| t.live_bytes).sum();
        prop_assert_eq!(
            attributed + census.unattributed_live_bytes,
            census.live_bytes,
            "tenant rows + unattributed partition the heap"
        );
        let block_sum: u64 = census.classes.iter().map(|c| c.blocks).sum();
        prop_assert_eq!(block_sum, census.blocks, "classes partition the blocks");
    }
}

/// A budgeted tenant session's retained data is attributed to its row.
#[test]
fn census_attributes_budgeted_tenant_sessions() {
    let _guard = CENSUS_LOCK.lock().unwrap();
    let rt = Runtime::new(RuntimeConfig::managed().with_threads_exact(2));
    let a = rt.new_tenant("tenant-a", 1 << 20);
    let b = rt.new_tenant("tenant-b", 0); // unlimited, accounting only
    for (session, n) in [(&a, 200i64), (&b, 50i64)] {
        rt.try_run_session(session, move |m| {
            let mut list = Value::Unit;
            for i in 0..n {
                list = m.alloc_tuple(&[Value::Int(i), list]);
            }
            let _keep = m.root(list);
            Value::Unit
        })
        .unwrap();
    }
    let census = rt.heap_census();
    let row = |name: &str| {
        census
            .tenants
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("census lost tenant {name}"))
    };
    let (ra, rb) = (row("tenant-a"), row("tenant-b"));
    assert!(
        ra.live_bytes > 0 && ra.blocks > 0,
        "tenant-a attribution: {ra:?}"
    );
    assert!(
        rb.live_bytes > 0 && rb.blocks > 0,
        "tenant-b attribution: {rb:?}"
    );
    assert!(
        ra.live_bytes > rb.live_bytes,
        "the 4x-retaining tenant must show more live bytes: {ra:?} vs {rb:?}"
    );
    assert_eq!(ra.budget_limit, 1 << 20);
    assert_eq!(rb.budget_limit, 0);
    // The budget's own gauge and the side-metadata agree on order of
    // magnitude (the budget charges logical bytes at allocation time).
    assert!(ra.budget_live_bytes > 0);
    rt.retire_session(&a);
    rt.retire_session(&b);
}

/// An injected GC-phase stall trips the watchdog, which must leave a
/// decodable flight recording containing the stall event (and the run
/// itself still completes correctly).
#[test]
fn watchdog_stall_dumps_a_parseable_flight_recording() {
    let _guard = CENSUS_LOCK.lock().unwrap();
    let dir = fresh_dump_dir("stall");
    let plan = FailPlan::new(11).with(
        "lgc/evacuate",
        FailAction::Delay(120_000_000),
        FailWhen::Nth(1),
    );
    let bench = mpl_bench_suite::by_name("msort").unwrap();
    let n = bench.small_n() / 2;
    let rt = Runtime::new(
        census_config(2)
            .with_telemetry()
            .with_failpoints(plan)
            .with_gc_watchdog(Duration::from_millis(40)),
    );
    let got = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
    assert_eq!(got, Value::Int(bench.run_native(n)));
    let path = wait_for_dump(&dir, "watchdog-stall");
    let events = mpl_obs::flight_decode(&std::fs::read(&path).unwrap())
        .unwrap_or_else(|e| panic!("undecodable stall dump {}: {e}", path.display()));
    assert!(
        events
            .iter()
            .any(|e| e.kind == mpl_obs::FlightKind::Event && e.code == mpl_obs::EV_WATCHDOG_STALL),
        "stall dump holds {} records but no watchdog event",
        events.len()
    );
    // The decoder's rendering of the same records is valid Chrome-trace
    // JSON (well-formed enough to brace-balance).
    let trace = mpl_obs::flight_chrome_trace(&events);
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert_eq!(
        trace.matches('{').count(),
        trace.matches('}').count(),
        "unbalanced chrome trace"
    );
    drop(rt);
    std::env::remove_var("MPL_FLIGHT_DIR");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A heap-limit `AllocError` dumps a decodable flight recording whose
/// alloc-error event carries the budget that was exhausted.
#[test]
fn heap_limit_alloc_error_dumps_a_parseable_flight_recording() {
    let _guard = CENSUS_LOCK.lock().unwrap();
    let dir = fresh_dump_dir("alloc");
    let limit = 64 * 1024;
    let rt = Runtime::new(
        RuntimeConfig::managed()
            .with_telemetry()
            .with_heap_limit(limit),
    );
    let err = rt
        .try_run(|m| {
            let mut list = m.alloc_tuple(&[Value::Unit]);
            let mut h = m.root(list);
            loop {
                list = m.alloc_tuple(&[Value::Int(1), m.get(&h)]);
                h = m.root(list);
            }
        })
        .expect_err("an unbounded retained allocation must exhaust the budget");
    let err = err.alloc_error().expect("typed outcome is an alloc error");
    assert_eq!(err.limit, limit);
    let path = wait_for_dump(&dir, "alloc-error");
    let events = mpl_obs::flight_decode(&std::fs::read(&path).unwrap())
        .unwrap_or_else(|e| panic!("undecodable alloc dump {}: {e}", path.display()));
    let ev = events
        .iter()
        .find(|e| e.kind == mpl_obs::FlightKind::Event && e.code == mpl_obs::EV_ALLOC_ERROR)
        .expect("alloc-error dump holds the alloc-error event");
    assert_eq!(ev.b, limit as u64, "the event records the exhausted limit");
    assert!(ev.a > 0, "the event records the failing request size");
    drop(rt);
    std::env::remove_var("MPL_FLIGHT_DIR");
    let _ = std::fs::remove_dir_all(&dir);
}
