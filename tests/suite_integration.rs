//! Cross-crate integration: every benchmark, every runtime, one oracle.
//!
//! These tests are the repository's end-to-end safety net: each suite
//! benchmark must produce the native checksum on the managed runtime (in
//! several configurations) and on the sequential baseline, and the
//! runtime invariants the paper proves must hold after every run.

use mpl_baselines::SeqRuntime;
use mpl_runtime::{GcPolicy, Runtime, RuntimeConfig, StoreConfig, Value};

fn gc_pressure() -> RuntimeConfig {
    RuntimeConfig {
        policy: GcPolicy {
            lgc_trigger_bytes: 32 * 1024,
            cgc_trigger_pinned_bytes: 64 * 1024,
            immediate_block_free: true,
        },
        store: StoreConfig {
            block_words: 256,
            ..Default::default()
        },
        ..RuntimeConfig::managed()
    }
}

/// Runs one benchmark at `small_n` under a configuration and checks the
/// checksum plus the universal invariants.
fn check(bench: &dyn mpl_bench_suite::Benchmark, cfg: RuntimeConfig, label: &str) {
    let n = bench.small_n();
    let native = bench.run_native(n);
    let rt = Runtime::new(cfg);
    let got = rt.run(|m| Value::Int(bench.run_mpl(m, n))).expect_int();
    assert_eq!(got, native, "{} [{}]: wrong checksum", bench.name(), label);
    let s = rt.stats();
    assert_eq!(
        s.pinned_bytes,
        0,
        "{} [{}]: pins must all resolve",
        bench.name(),
        label
    );
    if !bench.entangled() {
        assert_eq!(
            s.pins,
            0,
            "{} [{}]: disentangled benchmarks never pin",
            bench.name(),
            label
        );
        assert_eq!(s.entangled_reads, 0, "{} [{}]", bench.name(), label);
    }
    // Independent whole-heap certification: no collection left a
    // reachable dangling reference.
    rt.assert_heap_sound();
}

#[test]
fn all_benchmarks_default_config() {
    for bench in mpl_bench_suite::all() {
        check(bench.as_ref(), RuntimeConfig::managed(), "default");
    }
}

#[test]
fn all_benchmarks_under_sliced_cgc() {
    // Incremental concurrent collection: pauses are bounded by the slice,
    // cycles span many safepoints, and every checksum still holds.
    for bench in mpl_bench_suite::all() {
        check(
            bench.as_ref(),
            gc_pressure().with_cgc_slice(64),
            "sliced-cgc",
        );
    }
}

#[test]
fn all_benchmarks_under_gc_pressure() {
    for bench in mpl_bench_suite::all() {
        check(bench.as_ref(), gc_pressure(), "gc-pressure");
    }
}

#[test]
fn all_benchmarks_with_dag_recording() {
    for bench in mpl_bench_suite::all() {
        let cfg = RuntimeConfig::managed().with_dag();
        let n = bench.small_n();
        let rt = Runtime::new(cfg);
        let got = rt.run(|m| Value::Int(bench.run_mpl(m, n))).expect_int();
        assert_eq!(got, bench.run_native(n), "{}", bench.name());
        let dag = rt.take_dag().expect("dag recorded");
        assert!(dag.total_work() > 0, "{}: work recorded", bench.name());
        assert!(
            dag.span() <= dag.total_work(),
            "{}: span <= work",
            bench.name()
        );
    }
}

#[test]
fn all_benchmarks_on_sequential_baseline() {
    for bench in mpl_bench_suite::all() {
        let n = bench.small_n();
        let mut rt = SeqRuntime::new(64 * 1024); // aggressive GC
        let got = bench.run_seq(&mut rt, n);
        assert_eq!(got, bench.run_native(n), "{}", bench.name());
    }
}

#[test]
fn disentangled_benchmarks_in_detect_only_mode() {
    // Prior-MPL semantics must accept the entire disentangled suite.
    for bench in mpl_bench_suite::all() {
        if bench.entangled() {
            continue;
        }
        check(bench.as_ref(), RuntimeConfig::detect_only(), "detect-only");
    }
}

#[test]
fn entangled_benchmarks_abort_in_detect_only_mode() {
    for bench in mpl_bench_suite::all() {
        if !bench.entangled() {
            continue;
        }
        let rt = Runtime::new(RuntimeConfig::detect_only());
        let n = bench.small_n();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(|m| Value::Int(bench.run_mpl(m, n)))
        }));
        assert!(
            result.is_err(),
            "{}: prior MPL must reject this entangled program",
            bench.name()
        );
    }
}

#[test]
fn threaded_executor_runs_the_suite() {
    // Real threads (bounded by tokens) with deferred chunk reclamation;
    // validates the concurrent pin/SATB/graveyard protocols end to end.
    for bench in mpl_bench_suite::all() {
        let n = bench.small_n();
        let rt = Runtime::new(RuntimeConfig::managed().with_threads(3));
        let got = rt.run(|m| Value::Int(bench.run_mpl(m, n))).expect_int();
        assert_eq!(got, bench.run_native(n), "{} (threads)", bench.name());
        assert_eq!(rt.stats().pinned_bytes, 0, "{} (threads)", bench.name());
    }
}

#[test]
fn suspects_optimization_preserves_entanglement_accounting() {
    // The candidates fast path must not change WHAT entangles — only how
    // fast non-candidates are read. Pins and entangled accesses must be
    // identical with the optimization on and off.
    for bench in mpl_bench_suite::all() {
        let n = bench.small_n();
        let on = {
            let rt = Runtime::new(RuntimeConfig::managed());
            let c = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
            (c, rt.stats())
        };
        let off = {
            let cfg = RuntimeConfig {
                suspects: false,
                ..RuntimeConfig::managed()
            };
            let rt = Runtime::new(cfg);
            let c = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
            (c, rt.stats())
        };
        assert_eq!(on.0, off.0, "{}: checksum", bench.name());
        assert_eq!(on.1.pins, off.1.pins, "{}: pins", bench.name());
        assert_eq!(
            on.1.entangled_reads,
            off.1.entangled_reads,
            "{}: entangled reads",
            bench.name()
        );
        assert_eq!(
            on.1.entangled_writes,
            off.1.entangled_writes,
            "{}: entangled writes",
            bench.name()
        );
    }
}

#[test]
fn repeated_runs_share_a_runtime() {
    // One runtime instance, several programs back to back: heap ids,
    // chunks, and stats accumulate but stay consistent.
    let rt = Runtime::new(RuntimeConfig::managed());
    let fib = mpl_bench_suite::by_name("fib").unwrap();
    let dedup = mpl_bench_suite::by_name("dedup").unwrap();
    for _ in 0..3 {
        let a = rt.run(|m| Value::Int(fib.run_mpl(m, fib.small_n())));
        assert_eq!(a, Value::Int(fib.run_native(fib.small_n())));
        let b = rt.run(|m| Value::Int(dedup.run_mpl(m, dedup.small_n())));
        assert_eq!(b, Value::Int(dedup.run_native(dedup.small_n())));
    }
    assert_eq!(rt.stats().pinned_bytes, 0);
}
