//! Property tests for the fault-injection and memory-pressure machinery.
//!
//! Two properties the chaos harness leans on:
//!
//! 1. **Schedule determinism** — a failpoint's fire decision is a pure
//!    function of `(seed, site, hit#)`, so the *set* of firing hits is
//!    identical across runs and thread counts (only arrival order may
//!    differ). Without this, a chaos failure would not reproduce from
//!    its seed.
//! 2. **Heap-limit monotonicity** — if a program fits in budget `B`, it
//!    fits in every budget `≥ B`. Without this, "raise the limit" would
//!    not be a meaningful operator response to an `AllocError`.

use std::sync::Mutex;

use proptest::prelude::*;

use mpl_fail::{decides, FailAction, FailPlan, FailWhen};
use mpl_runtime::{Runtime, RuntimeConfig, Value};

/// The failpoint registry and fire log are process-global; serialize.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

const SITE: &str = "prop/site";

/// Drives `hits` total hits of [`SITE`] across `threads` threads and
/// returns the sorted hit numbers that fired.
fn drive(plan: &FailPlan, hits: u64, threads: u64) -> Vec<u64> {
    let owner = mpl_fail::install(plan);
    let _ = mpl_fail::take_fire_log(); // drain leftovers
    let per = hits / threads;
    let rem = hits % threads;
    std::thread::scope(|s| {
        for t in 0..threads {
            let n = per + u64::from(t < rem);
            s.spawn(move || {
                for _ in 0..n {
                    let _ = mpl_fail::hit(SITE);
                }
            });
        }
    });
    let mut fired: Vec<u64> = mpl_fail::take_fire_log()
        .into_iter()
        .filter(|r| r.site == SITE)
        .map(|r| r.hit)
        .collect();
    mpl_fail::uninstall(owner);
    fired.sort_unstable();
    fired
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn failpoint_fire_schedule_is_deterministic(
        seed in 0u64..10_000,
        k in 1u64..9,
        hits in 1u64..300,
    ) {
        let _guard = REGISTRY_LOCK.lock().unwrap();
        let when = FailWhen::OneIn(k);
        let plan = FailPlan::new(seed).with(SITE, FailAction::Yield, when);
        // The pure decision function is the reference schedule.
        let expected: Vec<u64> = (1..=hits).filter(|&h| decides(seed, SITE, when, h)).collect();
        // One thread, twice: identical.
        prop_assert_eq!(&drive(&plan, hits, 1), &expected);
        prop_assert_eq!(&drive(&plan, hits, 1), &expected);
        // Four threads, same total hit count: the same set of hit
        // numbers fires, regardless of which thread lands on each.
        prop_assert_eq!(&drive(&plan, hits, 4), &expected);
    }

    #[test]
    fn nth_failpoint_fires_exactly_once_at_n(
        seed in 0u64..1000,
        n in 1u64..50,
        extra in 0u64..100,
    ) {
        let _guard = REGISTRY_LOCK.lock().unwrap();
        let plan = FailPlan::new(seed).with(SITE, FailAction::Yield, FailWhen::Nth(n));
        let fired = drive(&plan, n + extra, 1);
        prop_assert_eq!(fired, vec![n]);
    }

    #[test]
    fn heap_limit_is_monotonic(retain in 1usize..48, junk in 0usize..64) {
        let _guard = REGISTRY_LOCK.lock().unwrap();
        // A deterministic sequential program: retain `retain` rooted
        // tuples, churn `junk` immediately-dead ones.
        let run = |budget: usize| -> bool {
            let rt = Runtime::new(RuntimeConfig::managed().with_heap_limit(budget));
            rt.try_run(|m| {
                for i in 0..retain {
                    let t = m.alloc_tuple(&[Value::Int(i as i64), Value::Int(0)]);
                    let _h = m.root(t);
                }
                for i in 0..junk {
                    let _ = m.alloc_tuple(&[Value::Int(i as i64)]);
                }
                Value::Unit
            })
            .is_ok()
        };
        // Find the smallest power-of-two budget that fits.
        let mut budget = 4 * 1024;
        while !run(budget) {
            budget *= 2;
            prop_assert!(budget <= 16 * 1024 * 1024, "tiny program must fit eventually");
        }
        // Every larger budget also fits.
        for factor in [2usize, 4, 16] {
            prop_assert!(
                run(budget * factor),
                "fits in {budget} but not {}",
                budget * factor
            );
        }
    }
}
