//! Agreement between the formal semantics (`mpl-lang`) and the runtime
//! (`mpl-runtime`): matched programs must exhibit the same entanglement
//! behaviour — same answers, entanglement iff the calculus says so, and
//! cost metrics that tell the same story.

use mpl_lang::{run_program, LangMode, Options, Schedule, Val};
use mpl_runtime::{Runtime, RuntimeConfig, Value};

fn lang_df(src: &str) -> mpl_lang::Outcome {
    run_program(
        src,
        Options {
            schedule: Schedule::DepthFirst,
            mode: LangMode::Managed,
            fuel: 50_000_000,
        },
    )
    .expect("program runs")
}

/// The publish/read pair, expressed in both systems.
#[test]
fn entangled_publish_agrees() {
    // Calculus version.
    let out = lang_df(mpl_lang::examples::ENTANGLE_PUBLISH);
    assert_eq!(out.result, Val::Int(3));
    assert!(out.costs.entangled_reads >= 1);
    assert_eq!(out.costs.pins, 1);

    // Runtime version of the same program.
    let rt = Runtime::new(RuntimeConfig::managed());
    let got = rt.run(|m| {
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);
        let (_, got) = m.fork(
            |m| {
                let pair = m.alloc_tuple(&[Value::Int(1), Value::Int(2)]);
                m.write_ref(m.get(&c), pair);
                Value::Int(0)
            },
            |m| {
                let v = m.read_ref(m.get(&c));
                let a = m.tuple_get(v, 0).expect_int();
                let b = m.tuple_get(v, 1).expect_int();
                Value::Int(a + b)
            },
        );
        got
    });
    assert_eq!(got, Value::Int(3));
    let s = rt.stats();
    assert!(s.entangled_reads >= 1, "{s:?}");
    assert_eq!(s.pins, 1, "one pinned object, matching the semantics");
}

/// Purely functional programs never pin in either system.
#[test]
fn pure_programs_agree_on_zero_entanglement() {
    let out = lang_df(mpl_lang::examples::FIB);
    assert_eq!(out.result, Val::Int(55));
    assert_eq!(out.costs.pins, 0);
    assert_eq!(out.costs.entangled_reads, 0);

    let rt = Runtime::new(RuntimeConfig::managed());
    fn fib(m: &mut mpl_runtime::Mutator<'_>, n: i64) -> i64 {
        if n < 2 {
            return n;
        }
        let (a, b) = m.fork(
            move |m| Value::Int(fib(m, n - 1)),
            move |m| Value::Int(fib(m, n - 2)),
        );
        a.expect_int() + b.expect_int()
    }
    assert_eq!(rt.run(|m| Value::Int(fib(m, 10))), Value::Int(55));
    assert_eq!(rt.stats().pins, 0);
    assert_eq!(rt.stats().entangled_reads, 0);
}

/// Both systems apply the unpin-at-join rule: entanglement between
/// cousins survives the inner join and dissolves at the LCA join.
#[test]
fn unpin_at_join_depth_agrees() {
    let out = lang_df(mpl_lang::examples::ENTANGLE_DEEP);
    assert_eq!(out.result, Val::Int(42));
    assert!(out.costs.pins >= 1);
    assert!(
        out.store.pinned_locs().is_empty(),
        "all released by the end"
    );

    let rt = Runtime::new(RuntimeConfig::managed());
    rt.run(|m| {
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);
        let (_, got) = m.fork(
            |m| {
                // Inner fork: grandchild publishes.
                let (x, _) = m.fork(
                    |m| {
                        let pair = m.alloc_tuple(&[Value::Int(40), Value::Int(2)]);
                        m.write_ref(m.get(&c), pair);
                        Value::Int(0)
                    },
                    |_| Value::Int(0),
                );
                // Inner join happened; the pin must still be live because
                // the reader is a cousin (LCA is the root).
                x
            },
            |m| {
                let v = m.read_ref(m.get(&c));
                let a = m.tuple_get(v, 0).expect_int();
                let b = m.tuple_get(v, 1).expect_int();
                Value::Int(a + b)
            },
        );
        assert_eq!(got, Value::Int(42));
        Value::Unit
    });
    let s = rt.stats();
    assert!(s.pins >= 1);
    assert_eq!(s.pinned_bytes, 0, "outer join released the pin");
}

/// DetectOnly agreement: both systems reject the same entangled program
/// and accept the same pure one.
#[test]
fn detect_only_agrees() {
    let err = run_program(
        mpl_lang::examples::ENTANGLE_PUBLISH,
        Options {
            schedule: Schedule::DepthFirst,
            mode: LangMode::DetectOnly,
            fuel: 1_000_000,
        },
    );
    assert!(err.is_err());

    let ok = run_program(
        mpl_lang::examples::FIB,
        Options {
            schedule: Schedule::DepthFirst,
            mode: LangMode::DetectOnly,
            fuel: 10_000_000,
        },
    );
    assert!(ok.is_ok());
}

/// The footprint bound (footprint >= pinned set) holds in the calculus,
/// and the runtime's retained-entangled accounting respects the analogous
/// bound (retained bytes >= pinned bytes at collection time).
#[test]
fn space_bounds_agree() {
    let out = lang_df(mpl_lang::examples::ENTANGLE_LIST);
    assert!(out.costs.max_footprint >= out.costs.max_pinned);

    let cfg = RuntimeConfig {
        policy: mpl_runtime::GcPolicy {
            lgc_trigger_bytes: 1024,
            cgc_trigger_pinned_bytes: usize::MAX,
            immediate_block_free: true,
        },
        ..RuntimeConfig::managed()
    };
    let rt = Runtime::new(cfg);
    rt.run(|m| {
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);
        m.fork(
            |m| {
                // Left: allocate a remote mailbox and publish it.
                let mailbox = m.alloc_ref(Value::Unit);
                m.write_ref(m.get(&c), mailbox);
                Value::Unit
            },
            |m| {
                // Right: acquire the sibling's mailbox (pins it), then
                // write a list spine of its *own* allocations into it —
                // an entangled write pinning the list head; the spine is
                // the pin's closure and must survive this task's own
                // collections in place.
                let mailbox = m.read_ref(m.get(&c));
                let mut list = Value::Unit;
                for i in 0..8 {
                    let h = m.root(list);
                    list = m.alloc_tuple(&[Value::Int(i), m.get(&h)]);
                }
                m.write_ref(mailbox, list);
                // Churn to force a local collection with the pin live.
                for _ in 0..500 {
                    let _ = m.alloc_tuple(&[Value::Int(0)]);
                }
                // The spine is still intact through the mailbox.
                let mut cur = m.read_ref(mailbox);
                let mut sum = 0;
                while let Value::Obj(_) = cur {
                    sum += m.tuple_get(cur, 0).expect_int();
                    cur = m.tuple_get(cur, 1);
                }
                assert_eq!(sum, (0..8).sum::<i64>());
                Value::Int(sum)
            },
        );
        Value::Unit
    });
    let s = rt.stats();
    assert!(s.pins >= 2, "mailbox + list head: {s:?}");
    assert!(
        s.lgc_entangled_retained_bytes >= 8 * 32,
        "the whole spine is retained in place: {s:?}"
    );
}
