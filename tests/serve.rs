//! Integration tests for the service layer: persistent tenant sessions,
//! per-tenant budget enforcement, failure-path cleanliness, and the
//! deterministic traffic generator.

use std::sync::Mutex;

use proptest::prelude::*;

use mpl_runtime::{FailAction, FailPlan, FailWhen, Runtime, RuntimeConfig};
use mpl_serve::{
    schedule, schedule_digest, ArrivalProcess, Profile, RequestMix, Server, TenantSpec,
    TrafficConfig,
};

/// The failpoint registry is process-global; tests that arm plans
/// serialize here (and don't overlap the chaos binary, which cargo runs
/// separately).
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// Satellite regression: requests that *fail* — injected allocation
/// errors striking inside fork branches mid-request — must leave no
/// trace: no leaked pins, no parked branch results, no stray root-stack
/// registrations, no dead-object traces, and the session keeps serving.
#[test]
fn failed_requests_leak_no_pins_or_registry_entries() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    let plan = FailPlan::new(0xfee1).with("alloc/words", FailAction::Error, FailWhen::OneIn(60));
    let audit0 = mpl_gc::audit::counters();
    let rt = Runtime::new(
        RuntimeConfig::managed()
            .with_threads_exact(2)
            .with_audit()
            .with_failpoints(plan),
    );
    let mut srv = Server::new(
        &rt,
        vec![
            TenantSpec::new("ok", 0),
            TenantSpec::new("tangled", 0).profile(Profile::Entangled),
        ],
    );
    assert_eq!(rt.live_root_stacks(), 2, "one stack per tenant session");
    let rep = srv.run(&TrafficConfig {
        seed: 0xfee1,
        requests: 400,
        rate_hz: 200_000.0,
        tenants: 2,
        ..TrafficConfig::default()
    });
    assert!(
        rep.shed_total > 0,
        "injected allocation faults never surfaced"
    );
    assert!(
        rep.completed_total > 0,
        "server stopped serving after faults"
    );
    let s = rt.stats();
    assert_eq!(s.pinned_bytes, 0, "leaked pins after failed requests");
    assert_eq!(s.lgc_dead_traced, 0, "corruption canary");
    assert_eq!(rt.parked_results(), 0, "leaked parked branch results");
    assert_eq!(
        rt.live_root_stacks(),
        2,
        "failed requests leaked root-stack registrations"
    );
    let audit1 = mpl_gc::audit::counters();
    assert_eq!(audit1.failures - audit0.failures, 0, "phase audits");
    srv.shutdown();
    assert_eq!(rt.live_root_stacks(), 0, "retire must drop session roots");
    rt.assert_heap_sound();
}

/// An over-budget tenant is shed by admission control; unbudgeted
/// tenants on the same runtime are untouched and the adversary's own
/// budget never exceeds its limit by more than one admission window.
#[test]
fn budget_isolation_adversary_sheds_victims_serve() {
    let rt = Runtime::new(RuntimeConfig::managed().with_threads_exact(2));
    let mut srv = Server::new(
        &rt,
        vec![
            TenantSpec::new("victim", 0),
            TenantSpec::new("adversary", 192 * 1024)
                .profile(Profile::Entangled)
                .payload_scale(64)
                .cache_slots(256),
        ],
    );
    let rep = srv.run(&TrafficConfig {
        seed: 7,
        requests: 300,
        rate_hz: 100_000.0,
        tenants: 2,
        ..TrafficConfig::default()
    });
    let victim = &rep.tenants[0];
    let adv = &rep.tenants[1];
    assert_eq!(victim.shed_budget, 0, "victim shed by adversary pressure");
    assert_eq!(victim.completed, victim.admitted);
    assert!(adv.shed_budget > 0, "adversary never shed");
    let b = adv.budget.as_ref().expect("adversary budget");
    assert!(b.sheds > 0);
    assert!(
        b.max_live_bytes < 2 * b.limit,
        "budget enforcement window too loose: peak {} vs limit {}",
        b.max_live_bytes,
        b.limit
    );
    srv.shutdown();
    rt.assert_heap_sound();
}

/// Sessions persist across schedules: a second run on the same server
/// reuses the same root stacks and serves everything.
#[test]
fn sessions_persist_across_runs() {
    let rt = Runtime::new(RuntimeConfig::managed());
    let mut srv = Server::new(&rt, vec![TenantSpec::new("t", 0)]);
    let t1 = TrafficConfig {
        requests: 150,
        rate_hz: 100_000.0,
        ..TrafficConfig::default()
    };
    let r1 = srv.run(&t1);
    let stacks_between = rt.live_root_stacks();
    let r2 = srv.run(&TrafficConfig { seed: 99, ..t1 });
    assert_eq!(r1.completed_total, 150);
    assert_eq!(r2.completed_total, 150);
    assert_eq!(stacks_between, 1, "between runs: exactly the session stack");
    assert_eq!(rt.live_root_stacks(), 1);
    assert_eq!(rt.parked_results(), 0);
    srv.shutdown();
    rt.assert_heap_sound();
}

/// Satellite: the JSON telemetry mode is machine-readable and the server
/// report's JSON carries the SLO fields CI parses.
#[test]
fn json_reports_are_machine_readable() {
    let rt = Runtime::new(RuntimeConfig::managed().with_telemetry());
    let mut srv = Server::new(&rt, vec![TenantSpec::new("j", 1 << 20)]);
    let rep = srv.run(&TrafficConfig {
        requests: 80,
        rate_hz: 50_000.0,
        ..TrafficConfig::default()
    });
    let j = rep.to_json();
    for key in [
        "\"schedule_digest\"",
        "\"goodput_rps\"",
        "\"live_slope_bytes_per_s\"",
        "\"gc\"",
        "\"lgc_dead_traced\"",
        "\"tenants\"",
        "\"p99_ns\"",
        "\"budget\"",
        "\"sheds\"",
    ] {
        assert!(j.contains(key), "server report JSON missing {key}: {j}");
    }
    let t = rt.telemetry_report();
    assert!(t.json.starts_with('{') && t.json.ends_with('}'));
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms_ns\"",
        "\"samples\"",
        "\"live_bytes\"",
        "\"lgc_dead_traced\"",
        "\"blocks_allocated\"",
        "\"blocks_freed\"",
        "\"lines_swept\"",
        "\"cgc_packets\"",
    ] {
        assert!(t.json.contains(key), "telemetry JSON missing {key}");
    }
    srv.shutdown();
}

/// Same seed, different worker counts: the *served* schedule digest and
/// per-tenant admission counts are identical — worker count affects only
/// timing, never what load is offered.
#[test]
fn served_schedule_is_worker_count_independent() {
    let mut digests = Vec::new();
    let mut admitted = Vec::new();
    for threads in [1, 4] {
        let rt = Runtime::new(RuntimeConfig::managed().with_threads_exact(threads));
        let mut srv = Server::new(
            &rt,
            vec![
                TenantSpec::new("a", 0),
                TenantSpec::new("b", 0).profile(Profile::Entangled),
            ],
        );
        let rep = srv.run(&TrafficConfig {
            seed: 0xd15e,
            requests: 200,
            rate_hz: 100_000.0,
            tenants: 2,
            ..TrafficConfig::default()
        });
        digests.push(rep.digest);
        admitted.push(
            rep.tenants
                .iter()
                .map(|t| (t.admitted, t.completed))
                .collect::<Vec<_>>(),
        );
        srv.shutdown();
    }
    assert_eq!(
        digests[0], digests[1],
        "schedule digest varies with threads"
    );
    assert_eq!(admitted[0], admitted[1], "admissions vary with threads");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite: the generator is a pure function of its config — same
    /// seed gives an identical arrival schedule and request mix, for any
    /// process/rate/shape. (Worker count cannot enter: `schedule` takes
    /// no runtime at all.)
    #[test]
    fn traffic_schedule_is_seed_deterministic(
        seed in 0u64..u64::MAX,
        rate_mhz in 1u64..100_000,
        requests in 1usize..500,
        tenants in 1usize..8,
        sessions in 1usize..5,
        poisson in any::<bool>(),
    ) {
        let cfg = TrafficConfig {
            seed,
            rate_hz: rate_mhz as f64 / 10.0,
            requests,
            process: if poisson { ArrivalProcess::Poisson } else { ArrivalProcess::Uniform },
            mix: RequestMix::default(),
            tenants,
            sessions_per_tenant: sessions,
        };
        let a = schedule(&cfg);
        let b = schedule(&cfg);
        prop_assert_eq!(&a, &b, "same config, different schedules");
        prop_assert_eq!(schedule_digest(&a), schedule_digest(&b));
        prop_assert_eq!(a.len(), requests);
        prop_assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        prop_assert!(a.iter().all(|x| x.tenant < tenants && x.session < sessions));
        // A different seed perturbs the digest (overwhelmingly).
        let other = schedule(&TrafficConfig { seed: seed ^ 1, ..cfg.clone() });
        prop_assert!(
            other != a || requests == 0,
            "seed change did not perturb the schedule"
        );
    }
}
