# Parallel Fibonacci: purely functional fork-join.
let fib = fix fib n =>
  if n < 2 then n
  else
    let p = par(fib (n - 1), fib (n - 2)) in
    fst p + snd p
in fib 20
