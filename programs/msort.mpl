# Parallel merge sort over arrays, entirely in the calculus.
# Builds a pseudo-random array, sorts [lo, hi) ranges by parallel
# divide-and-conquer with an auxiliary buffer, verifies sortedness, and
# returns (sorted_ok, checksum).
let n = 256 in
let a = array(n, 0) in
let buf = array(n, 0) in
# xorshift-ish seeded fill
let fill = fix fill i =>
  if i = n then 0
  else (update(a, i, (i * 1103515245 + 12345) mod 1000); fill (i + 1))
in
let copyrange = fix copyrange r =>
  let lo = fst r in
  let hi = snd r in
  if lo = hi then 0
  else (update(a, lo, sub(buf, lo)); copyrange (lo + 1, hi))
in
let merge = fix merge st =>
  # st = ((i, j), (k, (mid, hi)))
  let i = fst (fst st) in
  let j = snd (fst st) in
  let k = fst (snd st) in
  let mid = fst (snd (snd st)) in
  let hi = snd (snd (snd st)) in
  if k = hi then 0
  else if i < mid andalso (j = hi orelse sub(a, i) <= sub(a, j)) then
    (update(buf, k, sub(a, i)); merge ((i + 1, j), (k + 1, (mid, hi))))
  else
    (update(buf, k, sub(a, j)); merge ((i, j + 1), (k + 1, (mid, hi))))
in
let isort = fix isort r =>
  # insertion sort for small ranges: r = (lo, hi)
  let lo = fst r in
  let hi = snd r in
  let ins = fix ins i =>
    if i + 1 > hi - 1 then 0
    else
      let shift = fix shift j =>
        if j = lo then 0
        else if sub(a, j - 1) > sub(a, j) then
          let t = sub(a, j - 1) in
          (update(a, j - 1, sub(a, j)); update(a, j, t); shift (j - 1))
        else 0
      in
      (shift (i + 1); ins (i + 1))
  in
  if hi - lo < 2 then 0 else ins lo
in
let msort = fix msort r =>
  let lo = fst r in
  let hi = snd r in
  if hi - lo < 17 then isort (lo, hi)
  else
    let mid = (lo + hi) div 2 in
    let p = par(msort (lo, mid), msort (mid, hi)) in
    (merge ((lo, mid), (lo, (mid, hi))); copyrange (lo, hi))
in
let check = fix check i =>
  if i + 1 = n then 1
  else if sub(a, i) <= sub(a, i + 1) then check (i + 1)
  else 0
in
let sum = fix sum st =>
  # accumulator-passing (tail-recursive): st = (i, acc)
  let i = fst st in
  let acc = snd st in
  if i = n then acc
  else sum (i + 1, (acc + sub(a, i) * ((i mod 7) + 1)) mod 1000000007)
in
let q = fill 0 in
let s = msort (0, n) in
(check 0, sum (0, 0))
