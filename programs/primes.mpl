# Count primes below n by parallel divide-and-conquer over candidates.
# Each leaf trial-divides; the fork tree reduces the counts. Purely
# functional (disentangled): runs identically under --mode detect.
let n = 1000 in
let isprime = fix isprime p =>
  # p = (candidate, divisor)
  let c = fst p in
  let d = snd p in
  if c < 2 then 0
  else if d * d > c then 1
  else if c mod d = 0 then 0
  else isprime (c, d + 1)
in
let count = fix count range =>
  let lo = fst range in
  let hi = snd range in
  if hi - lo = 0 then 0
  else if hi - lo = 1 then isprime (lo, 2)
  else
    let mid = (lo + hi) div 2 in
    let p = par(count (lo, mid), count (mid, hi)) in
    fst p + snd p
in
count (0, n)
