# Histogram whose counter cells are *allocated by a concurrent sibling*:
# the left branch replaces every bucket with a freshly allocated ref
# while the right branch (concurrent under the calculus semantics) bumps
# whatever cells it finds. Under the deterministic depth-first schedule
# the refresh lands first, so every bump hits a sibling-allocated cell —
# entangled reads that the managed runtime pins and the prior-MPL
# semantics (--mode detect) rejects.
let buckets = array(8, ref 0) in
let init = fix init i =>
  if i = 8 then 0
  else (update(buckets, i, ref 0); init (i + 1))
in
let seed = init 0 in
let refresh = fix refresh i =>
  if i = 8 then 0
  else (update(buckets, i, ref 0); refresh (i + 1))
in
let bump = fn k =>
  let cell = sub(buckets, k) in
  cell := !cell + 1
in
let count = fix count range =>
  let lo = fst range in
  let hi = snd range in
  if hi - lo = 1 then (bump (lo mod 8); 0)
  else
    let mid = (lo + hi) div 2 in
    let p = par(count (lo, mid), count (mid, hi)) in 0
in
let go = par(refresh 0, count (0, 64)) in
let total = fix total i =>
  if i = 8 then 0
  else !(sub(buckets, i)) + total (i + 1)
in
total 0
