# A futures pipeline (semantics-level extension): stages communicate by
# touch; each stage starts as soon as its input is ready. Run it with
#   mplc programs/pipeline.mpl --interp --stats
# (the compiled backend is fork-join only and rejects future/touch).
let source = future (
  let gen = fix gen i => if i = 10 then 0 else i * i + gen (i + 1) in
  gen 0
) in
let square_sum = future (touch source * 2) in
let final = future (touch square_sum + 15) in
touch final
