# Entanglement: the left task publishes a freshly allocated pair through a
# shared cell; the right task consumes it concurrently. Prior MPL
# (--mode detect) aborts here; managed mode pins and releases at the join.
let cell = ref (0, 0) in
let p = par(
  (cell := (6, 7); 0),
  (fst !cell) * (snd !cell)
) in
snd p
