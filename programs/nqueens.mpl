# N-queens solution count; the board is an array (board[r] = column of the
# queen in row r). Parallel branches copy the board (persistent-style),
# deeper rows search sequentially in place.
let n = 8 in
let abs = fn x => if x < 0 then 0 - x else x in
let mkboard = fn u => array(n, ~1) in
let copyboard = fn b =>
  let nb = array(n, ~1) in
  let go = fix go i =>
    if i = n then nb
    else (update(nb, i, sub(b, i)); go (i + 1))
  in go 0
in
let safe = fn b => fn st =>
  # st = (row, col): check rows 0..row against placement (row, col)
  let row = fst st in
  let col = snd st in
  let go = fix go r =>
    if r = row then true
    else
      let c = sub(b, r) in
      if c = col then false
      else if abs (c - col) = abs (r - row) then false
      else go (r + 1)
  in go 0
in
let solve = fix solve st =>
  # st = (row, board)
  let row = fst st in
  let b = snd st in
  if row = n then 1
  else if row < 2 then
    # parallel over candidate columns, each branch on a fresh board copy
    let half = fix half r =>
      let lo = fst r in
      let hi = snd r in
      if hi - lo = 1 then
        (if safe b (row, lo)
         then (let nb = copyboard b in (update(nb, row, lo); solve (row + 1, nb)))
         else 0)
      else
        let mid = (lo + hi) div 2 in
        let p = par(half (lo, mid), half (mid, hi)) in
        fst p + snd p
    in half (0, n)
  else
    let try = fix try col =>
      if col = n then 0
      else
        (if safe b (row, col)
         then (update(b, row, col);
               let r = solve (row + 1, b) in
               (update(b, row, ~1); r))
         else 0)
        + try (col + 1)
    in try 0
in
solve (0, mkboard ())
