# Fill an array in parallel (down-path writes are local effects), then
# reduce it in parallel.
let a = array(256, 0) in
let fill = fix fill range =>
  let lo = fst range in
  let hi = snd range in
  if hi - lo = 1 then (update(a, lo, lo * lo); 0)
  else
    let mid = (lo + hi) div 2 in
    let p = par(fill (lo, mid), fill (mid, hi)) in 0
in
let sum = fix sum range =>
  let lo = fst range in
  let hi = snd range in
  if hi - lo = 1 then sub(a, lo)
  else
    let mid = (lo + hi) div 2 in
    let p = par(sum (lo, mid), sum (mid, hi)) in
    fst p + snd p
in
let q = fill (0, length a) in
sum (0, length a)
