//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! Same programming model: `proptest! { fn case(x in strategy) { .. } }`
//! runs the body over `ProptestConfig::cases` randomly generated inputs,
//! with `prop_assert!`-style macros reporting failures as
//! [`test_runner::TestCaseError`]. Differences from real proptest:
//!
//! * **no shrinking** — a failing case reports the generated values
//!   as-is (the per-test RNG is seeded from the test's module path, so
//!   failures reproduce deterministically across runs);
//! * `proptest-regressions` files are ignored;
//! * only the combinators the workspace uses are provided: ranges,
//!   tuples, [`strategy::Just`], `prop_map`, `prop_flat_map`, `boxed`,
//!   [`prop_oneof!`], [`collection::vec`], [`arbitrary::any`], and
//!   [`sample::Index`].

// Vendored API-compatible stub: exempt from workspace lint gates.
#![allow(clippy::all)]
pub mod strategy {
    //! Strategies: composable random-value generators.

    use std::fmt;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated value type.
        type Value: fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    impl<T: fmt::Debug> fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice among boxed strategies (built by [`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights summed")
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use std::fmt;
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `A` (see [`any`]).
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// Returns the canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod sample {
    //! Index sampling.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A positional choice, resolved against a collection length with
    /// [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        /// Resolves this choice against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next() as usize)
        }
    }
}

pub mod test_runner {
    //! Config, error type, and the per-test RNG.

    use std::fmt;

    /// Per-proptest configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case was rejected (filtered out).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The deterministic per-test RNG (SplitMix64 seeded from the test's
    /// module path, so failures reproduce run to run).
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from a test name.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(h)
        }

        /// Next 64 random bits.
        pub fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next() % bound
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg { $cfg } $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg { $crate::test_runner::ProptestConfig::default() } $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg { $cfg:expr }
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let mut __desc = ::std::string::String::new();
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let __v = $crate::strategy::Strategy::generate(
                                    &($strat),
                                    &mut __rng,
                                );
                                __desc.push_str(&::std::format!(
                                    "{} = {:?}; ",
                                    stringify!($pat),
                                    &__v
                                ));
                                let $pat = __v;
                            )+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match __result {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(e) => {
                            ::std::panic!(
                                "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                                stringify!($name),
                                __case,
                                __config.cases,
                                e,
                                __desc
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Weighted (or unweighted) choice among strategies with a common value
/// type. Arms are boxed, so they may be heterogeneous strategy types.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), __l, __r
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                    stringify!($a), stringify!($b), __l, __r, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __l
                ),
            ));
        }
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Union;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0usize..10, (a, b) in (0i64..5, 1u8..=3)) {
            prop_assert!(x < 10);
            prop_assert!(a < 5 && (1..=3).contains(&b));
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec((0u32..9).prop_map(|x| x * 2), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in v {
                prop_assert_eq!(x % 2, 0);
            }
        }

        #[test]
        fn oneof_and_index(
            pick in prop_oneof![2 => Just(1u8), 1 => Just(2u8)],
            i in any::<crate::sample::Index>(),
        ) {
            prop_assert!(pick == 1 || pick == 2);
            prop_assert!(i.index(7) < 7);
        }
    }

    #[test]
    fn union_respects_weights_loosely() {
        let u: Union<u8> = Union::new(vec![(1, Just(0u8).boxed()), (9, Just(1u8).boxed())]);
        let mut rng = crate::test_runner::TestRng::from_name("weights");
        let ones: usize = (0..200).map(|_| u.generate(&mut rng) as usize).sum();
        assert!(ones > 120, "heavier arm dominates ({ones}/200)");
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next(), b.next());
    }
}
