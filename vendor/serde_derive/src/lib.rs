//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the only shape the workspace
//! uses: non-generic structs with named fields. The expansion calls the
//! vendored serde's `Serialize::write_json` field by field. No `syn`/
//! `quote` (unavailable offline): the input item is parsed directly from
//! the token stream, which is straightforward for this restricted shape.

// Vendored API-compatible stub: exempt from workspace lint gates.
#![allow(clippy::all)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored JSON flavor) for a named-field
/// struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`) and visibility before the `struct` keyword.
    let mut name = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("expected struct name".into()),
                }
                i += 2;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return Err("vendored serde_derive supports only structs".into());
            }
            _ => i += 1,
        }
    }
    let name = name.ok_or_else(|| "expected a struct item".to_string())?;

    // Find the brace-delimited field group; anything else (generics,
    // where-clauses, tuple structs) is outside this stand-in's scope.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("vendored serde_derive does not support generics".into());
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err("vendored serde_derive does not support tuple/unit structs".into());
            }
            Some(_) => i += 1,
            None => return Err("expected struct body".into()),
        }
    };

    let fields = field_names(body)?;
    if fields.is_empty() {
        return Err("vendored serde_derive: struct has no named fields".into());
    }

    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n  fn write_json(&self, out: &mut String) {{\n    out.push('{{');\n"
    ));
    for (k, f) in fields.iter().enumerate() {
        if k > 0 {
            out.push_str("    out.push(',');\n");
        }
        out.push_str(&format!(
            "    out.push_str(\"\\\"{f}\\\":\");\n    ::serde::Serialize::write_json(&self.{f}, out);\n"
        ));
    }
    out.push_str("    out.push('}');\n  }\n}\n");
    out.parse()
        .map_err(|e| format!("derive expansion failed to parse: {e:?}"))
}

/// Extracts field names from a named-field struct body: for each
/// top-level comma-separated chunk, the identifier immediately before the
/// first top-level `:` (skipping attributes and visibility).
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut flush = |chunk: &mut Vec<TokenTree>| -> Result<(), String> {
        if chunk.is_empty() {
            return Ok(());
        }
        let mut j = 0;
        // Skip `#[...]` attributes and `pub` / `pub(...)` visibility.
        loop {
            match chunk.get(j) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => j += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    j += 1;
                    if matches!(chunk.get(j), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        j += 1;
                    }
                }
                _ => break,
            }
        }
        match (chunk.get(j), chunk.get(j + 1)) {
            (Some(TokenTree::Ident(id)), Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
                fields.push(id.to_string());
                chunk.clear();
                Ok(())
            }
            _ => Err("vendored serde_derive: expected `name: Type` field".into()),
        }
    };
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => flush(&mut current)?,
            _ => current.push(tt),
        }
    }
    flush(&mut current)?;
    Ok(fields)
}
