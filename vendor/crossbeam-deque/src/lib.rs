//! Offline stand-in for `crossbeam-deque`: the `Worker`/`Stealer`/
//! `Injector` API over a mutex-protected ring buffer.
//!
//! The real crate implements the Chase–Lev lock-free deque; this stand-in
//! keeps the exact API (so the executor's code is drop-in compatible with
//! the real crate on a networked host) but uses a `Mutex<VecDeque>` per
//! queue. Critical sections are a few pointer moves, so contention is
//! short; on the ≤8-worker pools this repository targets the difference
//! is latency, not correctness. Owner operations (`push`/`pop`) act on
//! the back of the deque (LIFO), steals take from the front (FIFO) —
//! the same discipline as Chase–Lev, which is what preserves the
//! help-first fork-join order the hierarchical heap relies on.

// Vendored API-compatible stub: exempt from workspace lint gates.
#![allow(clippy::all)]
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// The owner's endpoint of a work-stealing deque.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

/// A thief's endpoint of a [`Worker`]'s deque. Cloneable and shareable.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

/// A global FIFO injection queue.
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and may be retried.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// True if the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True if a task was stolen.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }
}

impl<T> Worker<T> {
    /// Creates a LIFO worker deque (owner pops its most recent push).
    pub fn new_lifo() -> Worker<T> {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Creates a FIFO worker queue (owner pops its oldest push).
    pub fn new_fifo() -> Worker<T> {
        // The stand-in keeps one implementation; `pop` order is LIFO.
        // The executor only uses `new_lifo`.
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Creates a stealer endpoint for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.lock().push_back(task);
    }

    /// Pops from the owner's end (most recently pushed first).
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_back()
    }

    /// True if the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Number of tasks observed in the deque.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> Stealer<T> {
    /// Steals one task from the opposite end of the owner's deque.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock() {
            Ok(mut q) => match q.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
            Err(p) => match p.into_inner().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
        }
    }

    /// True if the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Injector<T> {
    /// Creates an empty injection queue.
    pub fn new() -> Injector<T> {
        Injector {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task onto the queue.
    pub fn push(&self, task: T) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(task);
    }

    /// Steals one task (FIFO).
    pub fn steal(&self) -> Steal<T> {
        match self
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
        {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// True if the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Worker { .. }")
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Stealer { .. }")
    }
}

impl<T> fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Injector { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal().success(), Some(1), "thief takes oldest");
        assert_eq!(w.pop(), Some(3), "owner takes newest");
        assert_eq!(w.pop(), Some(2));
        assert!(w.pop().is_none());
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push('a');
        inj.push('b');
        assert_eq!(inj.steal().success(), Some('a'));
        assert_eq!(inj.steal().success(), Some('b'));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn concurrent_steals_never_duplicate() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let w = Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let seen = &seen;
                scope.spawn(move || {
                    while let Steal::Success(v) = s.steal() {
                        assert!(seen.lock().unwrap().insert(v), "duplicate steal of {v}");
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 1000);
    }
}
