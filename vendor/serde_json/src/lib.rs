//! Offline stand-in for `serde_json`: `to_string` / `to_string_pretty`
//! over the vendored serde's direct-to-JSON [`serde::Serialize`].

// Vendored API-compatible stub: exempt from workspace lint gates.
#![allow(clippy::all)]
use std::fmt;

/// Serialization error (the vendored pipeline is infallible; this exists
/// for API compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(indent(&to_string(value)?))
}

/// Minimal JSON re-indenter (assumes valid input from [`to_string`]).
fn indent(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if in_str {
            out.push(c);
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                depth += 1;
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_nests() {
        let v = vec![vec![1u32, 2], vec![3]];
        let compact = super::to_string(&v).unwrap();
        assert_eq!(compact, "[[1,2],[3]]");
        let pretty = super::to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
    }
}
