//! Offline stand-in for `serde` (serialization only, JSON only).
//!
//! The experiment harness is serde's only consumer in this workspace, and
//! it only ever derives `Serialize` on plain structs of primitives,
//! strings, and vectors, then calls `serde_json::to_string_pretty`. This
//! stand-in collapses that pipeline: [`Serialize`] renders JSON directly
//! into a `String`, and the derive macro (in the vendored `serde_derive`)
//! emits field-by-field calls to it.

// Vendored API-compatible stub: exempt from workspace lint gates.
#![allow(clippy::all)]
pub use serde_derive::Serialize;

/// Serialize `self` as JSON into `out`.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null"); // JSON has no NaN/Inf
        }
    }
}

impl Serialize for f32 {
    fn write_json(&self, out: &mut String) {
        (*self as f64).write_json(out);
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        out.push('"');
        for c in self.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        self.as_str().write_json(out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(42u64), "42");
        assert_eq!(json(-7i64), "-7");
        assert_eq!(json(true), "true");
        assert_eq!(json(f64::NAN), "null");
        assert_eq!(json("a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(json(vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(json(Option::<u8>::None), "null");
    }
}
