//! Offline stand-in for the `rand` crate (the subset this workspace uses).
//!
//! Provides [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait
//! with `gen_range` over integer/float ranges. Distribution quality is
//! "good enough for workload generation and victim selection" (modulo
//! reduction, not Lemire); all workspace uses are seeded and the same
//! generator is used by every implementation being compared, so checksums
//! stay consistent.

// Vendored API-compatible stub: exempt from workspace lint gates.
#![allow(clippy::all)]
use std::ops::{Range, RangeInclusive};

/// Core random-number source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A sampleable range type (implemented for `Range`/`RangeInclusive` of
/// the primitive integer types and `f64`).
pub trait SampleRange<T> {
    /// Samples uniformly from this range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

/// `rand::rngs` module stand-in.
pub mod rngs {
    /// A small fast generator (SplitMix64), used where rand's `SmallRng`
    /// would be.
    #[derive(Clone, Debug)]
    pub struct SmallRng(pub(crate) u64);

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Vigna).
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let a = r.gen_range(0..26u8);
            assert!(a < 26);
            let b = r.gen_range(-50..=50i64);
            assert!((-50..=50).contains(&b));
            let c = r.gen_range(0..usize::MAX / 3);
            assert!(c < usize::MAX / 3);
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
