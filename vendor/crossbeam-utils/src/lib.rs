//! Offline stand-in for `crossbeam-utils` (the subset this workspace
//! uses): [`CachePadded`] and a `Backoff` helper for spin loops.

// Vendored API-compatible stub: exempt from workspace lint gates.
#![allow(clippy::all)]
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes to avoid false sharing between
/// adjacent hot atomics.
#[derive(Default, Debug, Clone, Copy)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Exponential backoff for spin loops (API-compatible subset of
/// `crossbeam_utils::Backoff`; like the real crate, methods take
/// `&self` via an interior `Cell`).
#[derive(Debug, Default)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Creates a fresh backoff.
    pub fn new() -> Backoff {
        Backoff {
            step: std::cell::Cell::new(0),
        }
    }

    /// Resets to the initial (spinning) state.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off with spin hints only (for lock-free retry loops).
    pub fn spin(&self) {
        let step = self.step.get();
        for _ in 0..1u32 << step.min(Self::SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if step <= Self::SPIN_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Backs off, escalating from spinning to yielding the thread.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= Self::SPIN_LIMIT {
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= Self::YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// True once backoff has escalated past spinning: the caller should
    /// park instead of continuing to burn CPU.
    pub fn is_completed(&self) -> bool {
        self.step.get() > Self::YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_derefs() {
        let c = CachePadded::new(5u64);
        assert_eq!(*c, 5);
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn backoff_completes() {
        let b = Backoff::new();
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
