//! Offline stand-in for `criterion`.
//!
//! Provides the macro and type surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `Bencher::iter_with_setup`, `black_box`, `BenchmarkId`). Instead of criterion's statistical machinery it runs
//! each benchmark for a fixed sample count, reports mean ns/iter on
//! stdout, and performs no regression analysis — enough to execute
//! `cargo bench` offline and eyeball relative numbers.

// Vendored API-compatible stub: exempt from workspace lint gates.
#![allow(clippy::all)]
use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    crit: &'a mut Criterion,
    sample_size: usize,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    mean_ns: f64,
}

/// A parameterized benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            name: name.to_string(),
            crit: self,
            sample_size,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), 10, f);
        self
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {
        let _ = self.crit;
    }
}

impl Bencher {
    /// Times `f` over this bench's sample count and records the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup, then timed samples.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }

    /// Times `routine` over fresh inputs built by `setup`; only the
    /// routine is timed, matching criterion's `iter_with_setup`.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warmup, then timed samples (setup excluded from timing).
        black_box(routine(setup()));
        let mut total_ns = 0u128;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.mean_ns = total_ns as f64 / self.samples as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        mean_ns: 0.0,
    };
    f(&mut b);
    println!(
        "bench {name:<50} {:>14.0} ns/iter ({samples} samples)",
        b.mean_ns
    );
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("f", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("p", 4), &4, |b, &x| b.iter(|| x * 2));
        g.finish();
        c.bench_function("top", |b| b.iter(|| ()));
    }
}
