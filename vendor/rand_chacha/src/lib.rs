//! Offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] here is *not* the ChaCha stream cipher: it is a
//! deterministic counter-mode generator built on SplitMix64 finalization,
//! with the same construction API (`seed_from_u64`) and trait surface the
//! workspace uses. All consumers treat it as an opaque seeded PRNG for
//! workload generation and scheduler randomization, so the change of
//! stream is behavior-preserving as long as every run uses this same
//! vendored generator.

// Vendored API-compatible stub: exempt from workspace lint gates.
#![allow(clippy::all)]
use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator standing in for ChaCha8.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    state: u64,
    counter: u64,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Two finalization rounds separate nearby seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ChaCha8Rng {
            state: z ^ (z >> 31),
            counter: 0,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        let mut z = self
            .state
            .wrapping_add(self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
        assert!(a.gen_range(0..10) < 10);
    }
}
