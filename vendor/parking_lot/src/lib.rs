//! Offline stand-in for the `parking_lot` crate.
//!
//! This container has no crates.io access, so the workspace vendors an
//! API-compatible subset backed by `std::sync`. Semantic differences from
//! real parking_lot that matter here:
//!
//! * no poisoning: a panic while holding a lock does not poison it (we
//!   recover the guard from `PoisonError`), matching parking_lot;
//! * `lock()`/`read()`/`write()` return guards directly (no `Result`);
//! * `try_lock()` returns `Option`.
//!
//! Only the surface the workspace uses is provided: `Mutex`, `RwLock`,
//! `Condvar`, and their guards.

// Vendored API-compatible stub: exempt from workspace lint gates.
#![allow(clippy::all)]
use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock (std-backed, non-poisoning API).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock (std-backed, non-poisoning API).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

/// Whether a timed wait returned because of a timeout.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait timed out (as opposed to being notified).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified. The guard is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(&mut guard.0, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(&mut guard.0, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Runs `f` on the owned std guard in place. The std condvar API consumes
/// and returns guards; this adapter lets our wrapper guard expose the
/// parking_lot-style `&mut guard` API.
fn take_guard<'a, T: ?Sized>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // SAFETY: we read the guard out, immediately pass it to `f`, and write
    // the returned guard back before anyone can observe the hole. `f`
    // (std's wait) never panics while the guard is out except on poison,
    // which `unwrap_or_else(into_inner)` converts back into a guard.
    unsafe {
        let g = std::ptr::read(slot);
        let g = f(g);
        std::ptr::write(slot, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(r.timed_out());
    }
}
