//! Disentangled parallel mergesort: the hierarchical heap's fast path.
//! Demonstrates that a purely fork-join workload pays no entanglement
//! cost (zero pins), and uses the recorded computation DAG to simulate
//! multi-processor speedup on any host.
//!
//! Run with: `cargo run --release --example parallel_msort`

use mpl_bench_suite::by_name;
use mpl_runtime::{simulate, Runtime, RuntimeConfig, SimParams, Value};

fn main() {
    let bench = by_name("msort").expect("msort benchmark");
    let n = 100_000;

    let rt = Runtime::new(RuntimeConfig::managed().with_dag());
    let checksum = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
    let native = bench.run_native(n);
    assert_eq!(checksum, Value::Int(native), "verified against native sort");
    println!("sorted {n} keys (checksum {native})");

    let s = rt.stats();
    println!("  allocations : {}", s.allocs);
    println!("  LGC runs    : {}", s.lgc_runs);
    println!("  pins        : {} (disentangled: must be 0)", s.pins);

    let dag = rt.take_dag().expect("dag recorded");
    println!("  work        : {} units", dag.total_work());
    println!("  span        : {} units", dag.span());
    println!("  parallelism : {:.1}", dag.parallelism());
    println!("\nsimulated work-stealing speedup:");
    let t1 = simulate(
        &dag,
        SimParams {
            procs: 1,
            steal_overhead: 8,
            seed: 1,
        },
    )
    .time;
    for p in [1usize, 2, 4, 8, 16, 32, 64] {
        let tp = simulate(
            &dag,
            SimParams {
                procs: p,
                steal_overhead: 8,
                seed: 1,
            },
        )
        .time;
        println!(
            "  P={p:<3} T_P={tp:<12} speedup {:.2}x",
            t1 as f64 / tp as f64
        );
    }
}
