//! Decode a flight-recorder dump into Chrome-trace JSON.
//!
//! The runtime dumps its bounded in-memory ring of spans, anomaly
//! events, and GC census deltas (`mpl-flight-<reason>-<pid>-<n>.bin`,
//! see `MPL_FLIGHT_DIR`) when a GC watchdog stall, an `AllocError`, or
//! a heap audit failure is detected. This decoder turns such a dump
//! into JSON loadable at `chrome://tracing` / <https://ui.perfetto.dev>:
//!
//! ```text
//! cargo run --example flight_decode -- /tmp/mpl-flight-watchdog-stall-1234-0.bin > trace.json
//! ```
//!
//! With no argument it prints a summary of the current process's (empty)
//! ring, which doubles as a format self-check.

fn main() {
    let mut args = std::env::args().skip(1);
    let events = match args.next() {
        Some(path) => {
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("flight_decode: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            match mpl_obs::flight_decode(&bytes) {
                Ok(ev) => ev,
                Err(e) => {
                    eprintln!("flight_decode: {path} is not a flight dump: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => mpl_obs::flight_snapshot(),
    };
    eprintln!("flight_decode: {} records", events.len());
    for e in &events {
        eprintln!(
            "  {:>12} ns  {:?}/{} a={} b={}",
            e.t_ns,
            e.kind,
            mpl_obs::event_name(e.kind, e.code),
            e.a,
            e.b
        );
    }
    println!("{}", mpl_obs::flight_chrome_trace(&events));
}
