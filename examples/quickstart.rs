//! Quickstart: parallel functional programming *with effects*.
//!
//! Two tasks share a mutable cell across a fork. One publishes a freshly
//! allocated record; the sibling reads it — an *entangled* access that
//! prior hierarchical-heap runtimes would reject, and that this runtime
//! manages transparently by pinning the record until the join.
//!
//! Run with: `cargo run --example quickstart`

use mpl_runtime::{Runtime, RuntimeConfig, Value};

fn main() {
    let rt = Runtime::new(RuntimeConfig::managed());

    let result = rt.run(|m| {
        // A shared mutable cell, allocated before the fork.
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);

        let (_, got) = m.fork(
            // Task A: allocate a record in its own heap and publish it.
            |m| {
                let record = m.alloc_tuple(&[Value::Int(6), Value::Int(7)]);
                m.write_ref(m.get(&c), record);
                Value::Unit
            },
            // Task B: read the cell. If it sees A's record, that's an
            // entangled read — the runtime pins the record so B can use
            // it safely while A's collector stays out of the way.
            |m| {
                let v = m.read_ref(m.get(&c));
                match v {
                    Value::Obj(_) => {
                        let a = m.tuple_get(v, 0).expect_int();
                        let b = m.tuple_get(v, 1).expect_int();
                        Value::Int(a * b)
                    }
                    _ => Value::Int(-1),
                }
            },
        );
        got
    });

    println!("result: {result:?}");
    let stats = rt.stats();
    println!("entangled reads: {}", stats.entangled_reads);
    println!("objects pinned:  {}", stats.pins);
    println!("unpinned at join:{}", stats.unpins);
    println!(
        "pinned bytes now: {} (joins release everything)",
        stats.pinned_bytes
    );
    assert_eq!(result, Value::Int(42));
}
