//! The static disentanglement analysis at work: prove programs
//! entanglement-free at compile time and elide their barriers, while the
//! programs that genuinely share sibling objects are (correctly) kept on
//! the managed runtime.
//!
//! Run with: `cargo run --example static_analysis`

use mpl_compile::{analyze, run_source};
use mpl_lang::parse;
use mpl_runtime::{Runtime, RuntimeConfig};

fn main() {
    let programs: &[(&str, &str)] = &[
        (
            "parallel fib (pure)",
            "let fib = fix fib n => if n < 2 then n else \
             let p = par(fib (n - 1), fib (n - 2)) in fst p + snd p in fib 15",
        ),
        (
            "flat array fill + reduce",
            "let a = array(64, 0) in \
             let fill = fix fill r => let lo = fst r in let hi = snd r in \
               if hi - lo = 1 then (update(a, lo, lo * 3); 0) \
               else let mid = (lo + hi) div 2 in \
                    let p = par(fill (lo, mid), fill (mid, hi)) in 0 in \
             let go = fill (0, 64) in \
             let sum = fix sum i => if i = 64 then 0 else sub(a, i) + sum (i + 1) in \
             sum 0",
        ),
        (
            "int counter raced across par",
            "let c = ref 0 in let p = par(c := !c + 1, c := !c + 2) in !c",
        ),
        (
            "publish a pair through a ref",
            "let r = ref (0, 0) in \
             let p = par((r := (1, 2); 0), fst !r) in snd p",
        ),
        (
            "publish cells through an array",
            "let a = array(2, ref 0) in \
             let p = par((update(a, 0, ref 7); 0), !(sub(a, 0))) in snd p",
        ),
    ];

    println!("static disentanglement analysis");
    println!("================================\n");
    for (name, src) in programs {
        let ast = parse(src).expect("parse");
        let verdict = analyze(&ast).expect("well-typed");
        println!("{name}:");
        println!("  verdict : {verdict}");

        // Pick the runtime the verdict licenses.
        let (label, cfg) = if verdict.is_disentangled() {
            ("barrier-free", RuntimeConfig::no_barrier())
        } else {
            ("managed", RuntimeConfig::managed())
        };
        let rt = Runtime::new(cfg);
        let out = run_source(&rt, src, 10_000_000).expect("run");
        let stats = rt.stats();
        println!("  executed: {label} -> {}", out.rendered);
        println!(
            "  dynamic : {} barriered reads, {} entangled, {} pins\n",
            stats.barrier_reads, stats.entangled_reads, stats.pins
        );

        // The analysis is sound: barrier-free runs must match managed runs.
        if verdict.is_disentangled() {
            let rt2 = Runtime::new(RuntimeConfig::managed());
            let check = run_source(&rt2, src, 10_000_000).expect("run");
            assert_eq!(out.rendered, check.rendered);
            assert_eq!(
                rt2.stats().entangled_reads,
                0,
                "the proof holds at run time"
            );
        }
    }
    println!("every barrier-free execution matched its managed twin.");
}
