//! A miniature multi-tenant service: three tenants with heap budgets on
//! one persistent runtime, open-loop Poisson traffic, and an SLO report.
//! The `hog` tenant retains far more than its budget and is shed by
//! admission control while the others keep serving.
//!
//! Run with: `cargo run --release --example server`

use mpl_runtime::{Runtime, RuntimeConfig};
use mpl_serve::{Profile, Server, TenantSpec, TrafficConfig};

fn main() {
    let rt = Runtime::new(RuntimeConfig::managed().with_telemetry());
    let mut server = Server::new(
        &rt,
        vec![
            TenantSpec::new("web", 8 << 20).cache_slots(128),
            TenantSpec::new("feed", 8 << 20).profile(Profile::Entangled),
            TenantSpec::new("hog", 256 * 1024)
                .profile(Profile::Entangled)
                .payload_scale(64),
        ],
    );
    let traffic = TrafficConfig {
        rate_hz: 400.0,
        requests: 2_000,
        tenants: 3,
        ..TrafficConfig::default()
    };
    println!(
        "offering {} requests at {} rps across {} tenants...",
        traffic.requests,
        traffic.rate_hz,
        server.tenants.len()
    );
    let report = server.run(&traffic);
    println!("{}", report.render_table());
    let hog = &report.tenants[2];
    println!(
        "hog shed {} requests against its {} KiB budget; web/feed shed {}",
        hog.shed_budget,
        hog.budget.as_ref().map_or(0, |b| b.limit / 1024),
        report.tenants[0].shed_budget + report.tenants[1].shed_budget,
    );
    server.shutdown();
    rt.assert_heap_sound();
}
