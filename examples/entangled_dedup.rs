//! A concurrent hash set shared by parallel tasks — the paper's motivating
//! kind of workload: a lock-free data structure whose nodes are allocated
//! by many tasks and read by their concurrent siblings.
//!
//! Run with: `cargo run --release --example entangled_dedup`

use mpl_bench_suite::by_name;
use mpl_runtime::{Runtime, RuntimeConfig, Value};

fn main() {
    let bench = by_name("dedup").expect("dedup benchmark");
    let n = 50_000;

    // Managed entanglement: works, and reports its management costs.
    let rt = Runtime::new(RuntimeConfig::managed());
    let unique = rt.run(|m| Value::Int(bench.run_mpl(m, n)));
    let s = rt.stats();
    println!("deduplicated {n} items -> {unique:?} unique");
    println!("  entangled reads : {}", s.entangled_reads);
    println!("  objects pinned  : {}", s.pins);
    println!("  peak pinned     : {} bytes", s.max_pinned_bytes);
    println!("  all unpinned?   : {}", s.pinned_bytes == 0);

    // Prior MPL (detect-only) rejects the same program.
    let rt = Runtime::new(RuntimeConfig::detect_only());
    let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run(|m| Value::Int(bench.run_mpl(m, n)))
    }))
    .is_err();
    println!("prior MPL (DetectOnly) aborts on this program: {refused}");
}
