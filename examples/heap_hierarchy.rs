//! A tour of the memory substrate itself: build a heap hierarchy by hand,
//! create entanglement, watch the local collector shield pinned objects in
//! place, and see the concurrent collector reclaim them once dropped.
//!
//! Run with: `cargo run --example heap_hierarchy`

use mpl_gc::{collect_entangled, collect_local, CgcState, Graveyard};
use mpl_heap::{ObjKind, ObjRef, Store, StoreConfig, Value};

fn main() {
    let store = Store::new(StoreConfig {
        block_words: 32,
        ..Default::default()
    });
    let root = store.new_root_heap();
    let (left, right) = store.fork_heaps(root);
    println!("hierarchy: root={root} -> left={left}, right={right}");

    // The left task allocates a record; the right task acquires it.
    let record = store.alloc_values(left, ObjKind::Ref, &[Value::Int(99)]);
    let right_path = [root, right];
    println!(
        "record {record} local to right task? {}",
        store.is_local(&right_path, record)
    );
    let level = store.entanglement_level(&right_path, record);
    let (pinned, newly) = store.pin(record, level);
    println!("pinned {pinned} at level {level} (newly: {newly})");

    // The left task collects its heap: the pinned record must stay put.
    let mut roots: [ObjRef; 0] = [];
    let graveyard = Graveyard::new();
    let out = collect_local(&store, left, &mut roots, &graveyard, true);
    println!(
        "LGC(left): copied={}B reclaimed={}B retained-entangled={}B",
        out.copied_bytes, out.reclaimed_bytes, out.retained_entangled_bytes
    );
    assert_eq!(
        store.handle(record).field(0),
        Value::Int(99),
        "shielded in place"
    );

    // Nothing actually references the record (the "right task" dropped
    // it): the concurrent collector reclaims the entangled space even
    // while the pin is still nominally in place.
    let state = CgcState::new();
    let swept = collect_entangled(&store, &state, Vec::<Vec<ObjRef>>::new);
    println!(
        "CGC: swept {} object(s), {} bytes",
        swept.swept_objects, swept.swept_bytes
    );
    assert_eq!(swept.swept_objects, 1);

    // Join: the heaps merge; had the record still been pinned, the join
    // would have unpinned it here.
    let unpinned = store.join(root, left, right).unpinned;
    println!("join(root): unpinned {unpinned} object(s)");
    println!("\nhierarchy report:\n{}", mpl_heap::report(&store));
    println!("final stats: {:#?}", store.stats().snapshot());
}
