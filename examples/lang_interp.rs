//! The formal core calculus, executable: parse a λ-par-ref program, run it
//! under different schedules, and print the paper's cost metrics —
//! including how entanglement varies with the schedule.
//!
//! Run with: `cargo run --example lang_interp`
//! Or pass a program: `cargo run --example lang_interp -- 'par(1+1, 2*2)'`

use mpl_lang::{examples, run_program, LangMode, Options, Schedule};

fn main() {
    let arg = std::env::args().nth(1);
    let programs: Vec<(String, String)> = match arg {
        Some(src) => vec![("<cmdline>".to_string(), src)],
        None => examples::ALL
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect(),
    };

    for (name, src) in programs {
        println!("== {name} ==");
        for (sname, schedule) in [
            ("depth-first", Schedule::DepthFirst),
            ("round-robin", Schedule::RoundRobin),
            ("random(3)", Schedule::Random(3)),
        ] {
            match run_program(
                &src,
                Options {
                    schedule,
                    mode: LangMode::Managed,
                    fuel: 10_000_000,
                },
            ) {
                Ok(out) => {
                    let c = out.costs;
                    println!(
                        "  {sname:<12} => {:<12} work={} span={} ent.reads={} pins={} footprint={}",
                        out.render(),
                        c.steps,
                        c.span,
                        c.entangled_reads,
                        c.pins,
                        c.max_footprint
                    );
                }
                Err(e) => println!("  {sname:<12} => error: {e}"),
            }
        }
        println!();
    }
}
