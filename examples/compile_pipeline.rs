//! The full compiler pipeline: parse -> Hindley-Milner typecheck ->
//! lower -> execute on the entanglement-managed runtime, next to the same
//! program run under the paper's formal semantics — and a check that both
//! count entanglement identically.
//!
//! Run with: `cargo run --example compile_pipeline`
//! Or pass a program: `cargo run --example compile_pipeline -- 'par(1+1, 2*2)'`

use mpl_compile::{run_source, typecheck};
use mpl_lang::{parse, run_program, LangMode, Options, Schedule};
use mpl_runtime::{Runtime, RuntimeConfig};

fn main() {
    let arg = std::env::args().nth(1);
    let programs: Vec<(String, String)> = match arg {
        Some(src) => vec![("<cmdline>".into(), src)],
        None => mpl_lang::examples::ALL
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect(),
    };

    for (name, src) in programs {
        println!("== {name} ==");
        match typecheck(&parse(&src).expect("parse")) {
            Ok(ty) => println!("  type      : {ty}"),
            Err(e) => {
                println!("  rejected  : {e}");
                continue;
            }
        }
        let sem = run_program(
            &src,
            Options {
                schedule: Schedule::DepthFirst,
                mode: LangMode::Managed,
                fuel: 50_000_000,
            },
        )
        .expect("semantics");
        println!(
            "  semantics : {} (work {}, span {}, ent.reads {}, pins {})",
            sem.render(),
            sem.costs.steps,
            sem.costs.span,
            sem.costs.entangled_reads,
            sem.costs.pins
        );
        let rt = Runtime::new(RuntimeConfig::managed());
        let out = run_source(&rt, &src, 50_000_000).expect("compiled");
        let s = rt.stats();
        println!(
            "  compiled  : {} (allocs {}, ent.reads {}, pins {}, unpins {})",
            out.rendered, s.allocs, s.entangled_reads, s.pins, s.unpins
        );
        assert_eq!(sem.render(), out.rendered);
        assert_eq!(s.entangled_reads, sem.costs.entangled_reads);
        println!("  agreement : results and entanglement metrics match\n");
    }
}
